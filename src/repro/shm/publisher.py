"""Writer-side snapshot publication into shared memory.

The publisher owns the control segment and every data segment it ever
created.  A publish is:

1. freeze the live index under the service read lock (a consistent
   ``(frozen, component_of, epoch)`` triple);
2. pack it to TOLF bytes (no DAG edges, no graph — readers only query);
3. create ``{base}-g{generation}`` sized exactly to the pack, copy the
   bytes in;
4. seqlock-update the control block so readers see the new generation
   only after the segment is fully written;
5. retire the previous segment: it stays linked for a grace period so a
   reader that read the old generation just before the bump can still
   attach it, then it is unlinked (attached readers keep their mapping —
   unlink only removes the name).

A background thread polls the service epoch and republishes on change,
and mirrors the degraded flag into the control block so readers route
queries to the writer while the index is rebuilding.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from multiprocessing import shared_memory

from ..core.serialize import pack_frozen
from .control import ControlBlock, new_base_name, segment_name

__all__ = ["SnapshotPublisher"]


class SnapshotPublisher:
    """Publish frozen snapshots of *service*'s index into shared memory.

    Parameters
    ----------
    service:
        A :class:`~repro.service.server.ReachabilityService`; must expose
        ``freeze_snapshot()`` and ``epoch``.
    num_workers:
        Sizes the control block's worker-slot table.
    grace_period:
        Seconds a retired data segment stays linked after being
        superseded.
    registry:
        Optional metric registry; counts ``shm.publishes`` and
        ``shm.segments_unlinked``.
    """

    def __init__(
        self,
        service,
        *,
        base: Optional[str] = None,
        num_workers: int = 0,
        grace_period: float = 5.0,
        registry=None,
    ) -> None:
        self.service = service
        self.base = base or new_base_name()
        self.grace_period = grace_period
        self.registry = registry
        self.control = ControlBlock.create(self.base, num_workers=num_workers)
        self._generation = 0
        self._published_epoch: Optional[int] = None
        self._published_degraded = False
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._retired: list[tuple[float, int]] = []  # (retired_at, generation)
        self._publishes = 0
        self._unlinked = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def control_name(self) -> str:
        return self.control.name

    @property
    def generation(self) -> int:
        return self._generation

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(self) -> int:
        """Freeze + pack + publish one snapshot; returns its generation."""
        frozen, component_of, epoch = self.service.freeze_snapshot()
        # JSON writes tuples as arrays; readers re-tuple via
        # hashable_vertex, matching the wire protocol's convention.
        vertices = list(component_of)
        meta = {
            "vertices": vertices,
            "component_of": [component_of[v] for v in vertices],
            "epoch": epoch,
        }
        blob = pack_frozen(frozen, meta, include_edges=False)
        with self._lock:
            generation = self._generation + 1
            shm = shared_memory.SharedMemory(
                name=segment_name(self.base, generation),
                create=True, size=len(blob),
            )
            shm.buf[:len(blob)] = blob
            self.control.write_snapshot(generation, epoch, len(blob))
            previous = self._generation
            self._generation = generation
            self._segments[generation] = shm
            if previous:
                self._retired.append((time.monotonic(), previous))
            self._published_epoch = epoch
            self._publishes += 1
        if self.registry is not None:
            self.registry.incr("shm.publishes")
        self._reap_retired()
        return generation

    def poll_once(self) -> bool:
        """Publish iff the service moved on; mirror the degraded flag.

        Returns ``True`` when a new snapshot was published.
        """
        degraded = bool(self.service.degraded)
        if degraded != self._published_degraded:
            self.control.set_degraded(degraded)
            self._published_degraded = degraded
        if self.service.epoch == self._published_epoch:
            self._reap_retired()
            return False
        self.publish()
        return True

    def _reap_retired(self) -> None:
        """Unlink retired segments past their grace period."""
        now = time.monotonic()
        with self._lock:
            keep = []
            for retired_at, generation in self._retired:
                if now - retired_at >= self.grace_period:
                    self._unlink_generation(generation)
                else:
                    keep.append((retired_at, generation))
            self._retired = keep

    def _unlink_generation(self, generation: int) -> None:
        shm = self._segments.pop(generation, None)
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup
            pass
        self._unlinked += 1
        if self.registry is not None:
            self.registry.incr("shm.segments_unlinked")

    # ------------------------------------------------------------------
    # Background polling
    # ------------------------------------------------------------------

    def start(self, interval: float = 0.2) -> None:
        """Start the republish thread (idempotent)."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.poll_once()
                except Exception:  # pragma: no cover - keep publishing
                    if self.registry is not None:
                        self.registry.incr("shm.publish_errors")

        self._thread = threading.Thread(
            target=loop, name="shm-publisher", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop polling, signal shutdown, unlink every segment."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.control.set_shutdown()
        with self._lock:
            for generation in list(self._segments):
                self._unlink_generation(generation)
            self._retired.clear()
        self.control.close()
        self.control.unlink()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health_section(self) -> dict:
        """Snapshot-plane health for ``repro health`` / the health op."""
        generation, epoch, data_len, ts_ns = self.control.read_snapshot()
        now_ns = time.time_ns()
        workers = []
        for stats in self.control.workers():
            attach_ns = stats.pop("attach_ts_ns")
            stats["snapshot_age_s"] = round(
                max(0.0, (now_ns - attach_ns) / 1e9), 3
            ) if attach_ns else None
            stats["alive"] = bool(stats["pid"]) and _pid_alive(stats["pid"])
            workers.append(stats)
        return {
            "base": self.base,
            "generation": generation,
            "epoch": epoch,
            "bytes": data_len,
            "age_s": round(max(0.0, (now_ns - ts_ns) / 1e9), 3) if ts_ns else None,
            "publishes": self._publishes,
            "segments_unlinked": self._unlinked,
            "segments_live": len(self._segments),
            "grace_period_s": self.grace_period,
            "degraded": self.control.degraded,
            "workers": workers,
        }


def _pid_alive(pid: int) -> bool:
    import os

    try:
        os.kill(pid, 0)
    except (OSError, ProcessLookupError):
        return False
    return True
