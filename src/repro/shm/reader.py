"""Reader-side attachment to published snapshots.

A reader holds one :class:`AttachedSnapshot` at a time: a
:class:`~repro.core.frozen.FrozenTOLIndex` whose buffers are
``memoryview.cast`` views straight into the shared data segment (zero
copies — the only materialized state is the ``component_of`` dict and
the vertex table decoded from the pack's JSON meta), plus the epoch and
generation it was published at.

The per-request fast path is :meth:`SnapshotReader.current`: one racy
i64 read of the control block's generation cell; only when it moved does
the reader take the slow path — seqlock-read the triple, attach the new
segment, verify the pack CRC once, swap, and close the old mapping (the
publisher may have already unlinked the old *name*; the mapping itself
stays valid until closed).  An attach can race the grace-period unlink
(``FileNotFoundError``): the control block then already names a newer
generation, so the reader simply retries.

Hardening (the failure model in docs/robustness.md):

* every slow-path loop is **bounded** — torn reads, CRC mismatches and
  vanished segments are retried a fixed number of times, then surface
  as :class:`~repro.errors.SnapshotUnavailableError` instead of
  spinning;
* a **stalled seqlock** (the writer died mid-flip, sequence stuck odd)
  or an exhausted retry budget does not take down a reader that already
  holds a snapshot: :meth:`current` falls back to the previously
  attached generation (``stale_serves`` counts those) because a stale
  correct answer beats no answer while the writer is respawned;
* the pack CRC is re-verified on **every** attach (``unpack_frozen``
  checksums the whole body), so a segment corrupted in place is caught
  at the next re-attach, never silently served.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.frozen import FrozenTOLIndex
from ..core.serialize import hashable_vertex, unpack_frozen
from ..errors import SerializationError, SnapshotUnavailableError
from .control import ControlBlock, attach_segment, segment_name

__all__ = ["AttachedSnapshot", "SnapshotReader"]


class AttachedSnapshot:
    """One attached generation: frozen index + component map + identity."""

    __slots__ = (
        "frozen", "component_of", "epoch", "generation", "data_len",
        "published_at_ns", "attached_at_ns", "_shm",
    )

    def __init__(
        self,
        frozen: FrozenTOLIndex,
        component_of: dict,
        epoch: int,
        generation: int,
        data_len: int,
        published_at_ns: int,
        shm,
    ) -> None:
        self.frozen = frozen
        self.component_of = component_of
        self.epoch = epoch
        self.generation = generation
        self.data_len = data_len
        self.published_at_ns = published_at_ns
        self.attached_at_ns = time.time_ns()
        self._shm = shm

    def query(self, s, t) -> bool:
        """Reachability over the snapshot (raises ``KeyError`` on unknowns)."""
        cs = self.component_of[s]
        ct = self.component_of[t]
        return cs == ct or self.frozen.query(cs, ct)

    def age_ms(self) -> float:
        """Milliseconds since this snapshot was published."""
        if not self.published_at_ns:
            return 0.0
        return max(0.0, (time.time_ns() - self.published_at_ns) / 1e6)

    def close(self) -> None:
        """Drop the frozen views, then the mapping they pointed into."""
        self.frozen = None
        self.component_of = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view still escaped
            pass


class SnapshotReader:
    """Track the latest published snapshot for one reader process."""

    def __init__(self, control_name: str) -> None:
        self.control = ControlBlock.attach(control_name)
        self._base = control_name.removesuffix("-ctl")
        self._current: Optional[AttachedSnapshot] = None
        self.reattaches = 0
        self.stale_serves = 0
        self.attach_failures = 0

    @property
    def degraded(self) -> bool:
        return self.control.degraded

    @property
    def shutdown(self) -> bool:
        return self.control.shutdown

    def current(self) -> AttachedSnapshot:
        """The snapshot to serve this request from (re-attaching if stale).

        When the control block names a newer generation that cannot be
        attached (stalled seqlock, CRC-corrupt segment, raced unlinks
        through the whole retry budget), the previously attached
        snapshot is served instead — it is immutable, CRC-verified at
        attach time, and merely stale.  Only a reader with *no* prior
        snapshot propagates :class:`SnapshotUnavailableError`.
        """
        snap = self._current
        if snap is not None and snap.generation == self.control.generation:
            return snap
        try:
            return self._attach_latest()
        except SnapshotUnavailableError:
            if snap is not None:
                self.stale_serves += 1
                return snap
            raise

    def _attach_latest(self, *, attempts: int = 50) -> AttachedSnapshot:
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            generation, epoch, data_len, ts = self.control.read_snapshot()
            if generation == 0:
                raise SnapshotUnavailableError("no snapshot published yet")
            try:
                shm = attach_segment(segment_name(self._base, generation))
            except FileNotFoundError as exc:
                # Raced the grace-period unlink; the control block now
                # names a newer generation — retry reads it.
                last_error = exc
                self.attach_failures += 1
                time.sleep(0.01)
                continue
            try:
                # Attached segments are page-rounded; the control block
                # carries the exact pack length.  unpack_frozen verifies
                # the pack CRC over the whole body on every attach.
                frozen, meta = unpack_frozen(shm.buf[:data_len])
            except (SerializationError, ValueError) as exc:
                # Torn read (the generation cell advanced before our
                # attach but the name holds newer bytes than the triple
                # we read) or an in-place corrupted segment.  Retry
                # re-reads a consistent triple; persistent corruption
                # exhausts the budget and surfaces below.
                shm.close()
                last_error = exc
                self.attach_failures += 1
                time.sleep(0.01)
                continue
            component_of = dict(zip(
                (hashable_vertex(v) for v in meta["vertices"]),
                meta["component_of"],
            ))
            snap = AttachedSnapshot(
                frozen, component_of, meta.get("epoch", epoch),
                generation, data_len, ts, shm,
            )
            previous, self._current = self._current, snap
            if previous is not None:
                previous.close()
                self.reattaches += 1
            return snap
        raise SnapshotUnavailableError(
            f"could not attach a snapshot after {attempts} attempts: "
            f"{last_error}"
        ) from last_error

    def close(self) -> None:
        if self._current is not None:
            self._current.close()
            self._current = None
        self.control.close()
