"""The shared control block coordinating writer and reader processes.

A single small ``multiprocessing.shared_memory`` segment (one page) of
little-endian i64 cells, accessed through ``memoryview.cast("q")``:

======  =====================================================
cell    meaning
======  =====================================================
0       seqlock sequence (odd while a publish is in flight)
1       snapshot generation (names the data segment)
2       index epoch the snapshot was frozen at
3       exact pack length in bytes (attaches are page-rounded)
4       publish timestamp, ``time.time_ns()``
5       degraded flag mirrored from the writer service
6       number of reader workers (sizes the slot table)
7       shutdown flag (readers drain when set)
8       owner (supervisor) pid — the janitor's liveness probe
9       writer pid (0 while the writer is down or restarting)
10      worker respawns performed by the supervisor
11      writer respawns performed by the supervisor
======  =====================================================

Cells ``16 + i*8 ..`` form per-worker stats slots (pid, generation,
epoch, requests answered, attach timestamp, requests forwarded to the
writer).  Each slot has exactly one writing process, so slot stores are
plain racy i64 writes — aligned 8-byte stores are atomic on every
platform CPython runs on, and a stale read only skews a stats report.

The snapshot triple is the one multi-cell record read by many processes
while one process updates it, hence the seqlock: the publisher bumps the
sequence to odd, writes cells 1–4, bumps back to even; readers retry
while the sequence is odd or changed underneath them.

Python 3.8–3.12 registers *attached* segments with the resource tracker
too (bpo-38119), which would make the first reader to exit unlink
segments it does not own; :func:`attach_segment` unregisters after
attaching, leaving cleanup solely to the creating process.
"""

from __future__ import annotations

import os
import secrets
import time
from multiprocessing import resource_tracker, shared_memory

from ..errors import SnapshotUnavailableError

__all__ = [
    "ControlBlock",
    "attach_segment",
    "segment_name",
    "control_name",
    "new_base_name",
    "pid_alive",
    "MAX_WORKERS",
]

MAX_WORKERS = 64

_HEADER_CELLS = 16
_SLOT_CELLS = 8
_NUM_CELLS = _HEADER_CELLS + MAX_WORKERS * _SLOT_CELLS
CONTROL_SIZE = _NUM_CELLS * 8

_SEQ = 0
_GENERATION = 1
_EPOCH = 2
_DATA_LEN = 3
_PUBLISH_TS = 4
_DEGRADED = 5
_NUM_WORKERS = 6
_SHUTDOWN = 7
_OWNER_PID = 8
_WRITER_PID = 9
_WORKER_RESTARTS = 10
_WRITER_RESTARTS = 11

# Worker slot cell indices (relative to the slot base).
SLOT_PID = 0
SLOT_GENERATION = 1
SLOT_EPOCH = 2
SLOT_REQUESTS = 3
SLOT_ATTACH_TS = 4
SLOT_FORWARDED = 5


def new_base_name() -> str:
    """A collision-resistant base for this server's segment family."""
    return f"repro-{secrets.token_hex(4)}"


def pid_alive(pid: int) -> bool:
    """Whether *pid* names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover
        return False
    return True


def segment_name(base: str, generation: int) -> str:
    """Name of the data segment carrying snapshot *generation*."""
    return f"{base}-g{generation}"


def control_name(base: str) -> str:
    """Name of the control segment for segment family *base*."""
    return f"{base}-ctl"


def create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create a data segment whose cleanup is managed *explicitly*.

    The writer process creates snapshot segments, but the segment
    family outlives any one writer (failover respawns it), so the
    creating process's resource tracker must not adopt them: a killed
    or cleanly exiting writer would otherwise unlink the live snapshot
    out from under the readers still serving it.  Cleanup is explicit
    instead — the publisher unlinks retired generations, the
    supervisor sweeps the family at shutdown, and the boot-time
    janitor reaps anything a crashed server left behind.
    """
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API is semi-private
        pass
    return shm


def unlink_segment(name: str) -> bool:
    """Unlink shared segment *name* without resource-tracker traffic.

    Counterpart of :func:`create_segment`: those segments were never
    registered with this process's tracker, and the segments the
    janitor reaps were registered with a *dead* process's tracker — in
    both cases ``SharedMemory.unlink()`` would send a bogus UNREGISTER
    that the tracker answers with a KeyError traceback on stderr.
    Returns whether the name existed.
    """
    posixshmem = getattr(shared_memory, "_posixshmem", None)
    if posixshmem is None:  # pragma: no cover - non-POSIX fallback
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        seg.close()
        seg.unlink()
        return True
    try:
        posixshmem.shm_unlink(name if name.startswith("/") else "/" + name)
    except FileNotFoundError:
        return False
    return True


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its cleanup.

    Counterpart of creating: the resource tracker otherwise believes
    every attaching process owns the segment (bpo-38119) and unlinks it
    when that process exits, yanking live snapshots out from under the
    sibling readers.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API is semi-private
        pass
    return shm


class ControlBlock:
    """Typed accessor over the control segment (create or attach)."""

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._cells = shm.buf.cast("q")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, base: str, *, num_workers: int = 0) -> "ControlBlock":
        shm = shared_memory.SharedMemory(
            name=control_name(base), create=True, size=CONTROL_SIZE
        )
        block = cls(shm, owner=True)
        for i in range(_NUM_CELLS):
            block._cells[i] = 0
        block._cells[_NUM_WORKERS] = num_workers
        block._cells[_OWNER_PID] = os.getpid()
        return block

    @classmethod
    def attach(cls, name: str) -> "ControlBlock":
        return cls(attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        # Release the cast view before closing the mapping, else mmap
        # close raises BufferError ("exported pointers exist").  A worker
        # slot view handed out by :meth:`worker_cells` also counts as an
        # export; if one is still alive, leave the mapping to process
        # exit rather than fail the shutdown path.
        self._cells.release()
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()

    # ------------------------------------------------------------------
    # Snapshot triple (seqlock)
    # ------------------------------------------------------------------

    def write_snapshot(
        self, generation: int, epoch: int, data_len: int, *, on_flip=None
    ) -> None:
        cells = self._cells
        cells[_SEQ] += 1  # odd: publish in flight
        if on_flip is not None:
            # Chaos hook: lets a fault injector kill the writer in the
            # narrowest window — sequence odd, triple half-written.
            on_flip()
        cells[_GENERATION] = generation
        cells[_EPOCH] = epoch
        cells[_DATA_LEN] = data_len
        cells[_PUBLISH_TS] = time.time_ns()
        cells[_SEQ] += 1  # even: stable

    def read_snapshot(self, *, stall_timeout: float = 2.0) -> tuple[int, int, int, int]:
        """Return a consistent ``(generation, epoch, data_len, ts_ns)``.

        Bounded: a publish normally holds the sequence odd for
        microseconds, so a sequence that stays odd (or keeps moving)
        for *stall_timeout* seconds means the publisher died mid-flip —
        spinning forever would hang every reader behind a writer crash.
        Raises :class:`~repro.errors.SnapshotUnavailableError` on
        stall; callers with a previously attached snapshot keep serving
        it, and the respawned writer repairs the seqlock on re-attach.
        """
        cells = self._cells
        deadline = None
        while True:
            seq = cells[_SEQ]
            if not seq & 1:
                record = (
                    cells[_GENERATION], cells[_EPOCH],
                    cells[_DATA_LEN], cells[_PUBLISH_TS],
                )
                if cells[_SEQ] == seq:
                    return record
            if deadline is None:
                deadline = time.monotonic() + stall_timeout
            elif time.monotonic() >= deadline:
                raise SnapshotUnavailableError(
                    f"seqlock stalled for {stall_timeout}s (sequence "
                    f"{cells[_SEQ]}); publisher likely died mid-publish"
                )
            time.sleep(0.0005)  # publish in flight; yield and retry

    def repair_seqlock(self) -> bool:
        """Force a sequence left odd by a dead publisher back to even.

        Called by a respawned writer before it publishes: the seqlock
        protocol cannot self-heal once its only writer is gone.  The
        triple underneath may be half-written; that is fine — readers
        that pick it up fail CRC verification and retry, and the new
        writer's first publish overwrites the whole record.  Returns
        whether a repair was needed.
        """
        if self._cells[_SEQ] & 1:
            self._cells[_SEQ] += 1
            return True
        return False

    @property
    def generation(self) -> int:
        """Racy single-cell read — the reader fast-path staleness check."""
        return self._cells[_GENERATION]

    @property
    def epoch(self) -> int:
        return self._cells[_EPOCH]

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return bool(self._cells[_DEGRADED])

    def set_degraded(self, flag: bool) -> None:
        self._cells[_DEGRADED] = 1 if flag else 0

    @property
    def shutdown(self) -> bool:
        return bool(self._cells[_SHUTDOWN])

    def set_shutdown(self) -> None:
        self._cells[_SHUTDOWN] = 1

    @property
    def num_workers(self) -> int:
        return self._cells[_NUM_WORKERS]

    # ------------------------------------------------------------------
    # Process roster (supervisor/writer pids, respawn counters)
    # ------------------------------------------------------------------

    @property
    def owner_pid(self) -> int:
        """Pid of the process that created this control block."""
        return self._cells[_OWNER_PID]

    @property
    def writer_pid(self) -> int:
        """Pid of the live writer process (0 while down/restarting)."""
        return self._cells[_WRITER_PID]

    def set_writer_pid(self, pid: int) -> None:
        self._cells[_WRITER_PID] = pid

    def writer_alive(self) -> bool:
        """Liveness of the registered writer pid (False while down)."""
        pid = self._cells[_WRITER_PID]
        return bool(pid) and pid_alive(pid)

    @property
    def worker_restarts(self) -> int:
        return self._cells[_WORKER_RESTARTS]

    @property
    def writer_restarts(self) -> int:
        return self._cells[_WRITER_RESTARTS]

    def incr_worker_restarts(self) -> int:
        """Supervisor-only (single writing process per cell)."""
        self._cells[_WORKER_RESTARTS] += 1
        return self._cells[_WORKER_RESTARTS]

    def incr_writer_restarts(self) -> int:
        """Supervisor-only (single writing process per cell)."""
        self._cells[_WRITER_RESTARTS] += 1
        return self._cells[_WRITER_RESTARTS]

    # ------------------------------------------------------------------
    # Worker slots
    # ------------------------------------------------------------------

    def worker_cells(self, worker_id: int) -> memoryview:
        """The raw i64 slot for *worker_id* (its single-writer scratch)."""
        if not 0 <= worker_id < MAX_WORKERS:
            raise ValueError(f"worker id {worker_id} out of range")
        base = _HEADER_CELLS + worker_id * _SLOT_CELLS
        return self._cells[base:base + _SLOT_CELLS]

    def worker_stats(self, worker_id: int) -> dict:
        slot = self.worker_cells(worker_id)
        return {
            "worker": worker_id,
            "pid": slot[SLOT_PID],
            "generation": slot[SLOT_GENERATION],
            "epoch": slot[SLOT_EPOCH],
            "requests": slot[SLOT_REQUESTS],
            "forwarded": slot[SLOT_FORWARDED],
            "attach_ts_ns": slot[SLOT_ATTACH_TS],
        }

    def workers(self) -> list[dict]:
        """Stats for every configured worker slot."""
        return [self.worker_stats(i) for i in range(self.num_workers)]
