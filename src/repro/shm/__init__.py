"""Shared-memory snapshot plane for zero-copy multi-process serving.

One writer process owns the live :class:`~repro.service.server.
ReachabilityService`; N reader processes answer queries from an
immutable :class:`~repro.core.frozen.FrozenTOLIndex` attached over a
``multiprocessing.shared_memory`` segment.  Four pieces:

* :mod:`~repro.shm.control` — a tiny fixed-size control segment holding
  a seqlock-guarded ``(generation, epoch, data_len)`` triple, the
  process roster (owner/writer pids, respawn counters) plus one stats
  slot per worker;
* :mod:`~repro.shm.publisher` — writer side: freeze the live index
  under the read lock, pack it (TOLF bytes), copy into a fresh data
  segment, bump the control block, unlink retired segments after a
  grace period.  Attach mode re-binds a respawned writer to the
  surviving control block after failover;
* :mod:`~repro.shm.reader` — reader side: attach, re-attach when the
  generation advances, fall back to the last good snapshot when the
  writer is down, expose the current snapshot;
* :mod:`~repro.shm.janitor` — boot-time reaper for segment families
  whose owning process died without unlinking them.

See ``docs/scaling.md`` for the lifecycle and ``docs/robustness.md``
for the failure model.
"""

from .control import (
    ControlBlock,
    control_name,
    create_segment,
    pid_alive,
    segment_name,
    unlink_segment,
)
from .janitor import list_families, reap_orphans, scan_orphans, sweep_family
from .publisher import SnapshotPublisher
from .reader import AttachedSnapshot, SnapshotReader

__all__ = [
    "ControlBlock",
    "control_name",
    "create_segment",
    "pid_alive",
    "segment_name",
    "unlink_segment",
    "SnapshotPublisher",
    "SnapshotReader",
    "AttachedSnapshot",
    "list_families",
    "reap_orphans",
    "scan_orphans",
    "sweep_family",
]
