"""Shared-memory snapshot plane for zero-copy multi-process serving.

One writer process owns the live :class:`~repro.service.server.
ReachabilityService`; N reader processes answer queries from an
immutable :class:`~repro.core.frozen.FrozenTOLIndex` attached over a
``multiprocessing.shared_memory`` segment.  Three pieces:

* :mod:`~repro.shm.control` — a tiny fixed-size control segment holding
  a seqlock-guarded ``(generation, epoch, data_len)`` triple plus one
  stats slot per worker;
* :mod:`~repro.shm.publisher` — writer side: freeze the live index
  under the read lock, pack it (TOLF bytes), copy into a fresh data
  segment, bump the control block, unlink retired segments after a
  grace period;
* :mod:`~repro.shm.reader` — reader side: attach, re-attach when the
  generation advances, expose the current snapshot.

See ``docs/scaling.md`` for the full lifecycle.
"""

from .control import ControlBlock, segment_name
from .publisher import SnapshotPublisher
from .reader import AttachedSnapshot, SnapshotReader

__all__ = [
    "ControlBlock",
    "segment_name",
    "SnapshotPublisher",
    "SnapshotReader",
    "AttachedSnapshot",
]
