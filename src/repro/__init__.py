"""repro — Total Order Labeling reachability indices for dynamic graphs.

A faithful, from-scratch Python reproduction of

    Zhu, Lin, Wang, Xiao.  *Reachability Queries on Large Dynamic Graphs:
    A Total Order Approach.*  SIGMOD 2014.

Quick start
-----------
>>> from repro import DiGraph, ReachabilityIndex
>>> g = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
>>> index = ReachabilityIndex(g)            # cycles handled automatically
>>> index.query("a", "d")
True
>>> index.insert_vertex("e", in_neighbors=["d"])
>>> index.query("b", "e")
True

Package map
-----------
* :mod:`repro.graph` — graph substrate (storage, SCCs, traversals,
  generators, I/O).
* :mod:`repro.core` — the paper's contribution: the TOL framework,
  Butterfly construction, dynamic updates, label reduction.
* :mod:`repro.baselines` — competitors: BFS/DFS, transitive closure,
  GRAIL, Dagger, and the TF/DL/PLL/HL orders under TOL.
* :mod:`repro.datasets` — scaled-down stand-ins for the paper's Table 3.
* :mod:`repro.bench` — workloads and experiment drivers for every table
  and figure of the paper's Section 8.
* :mod:`repro.service` — concurrent serving layer: reader-writer locked
  index, epoch-invalidated query cache, coalescing update queue, metrics.
"""

from .core.frozen import FrozenTOLIndex, freeze
from .core.index import ReachabilityIndex, TOLIndex
from .core.labeling import TOLLabeling
from .core.serialize import load_index, save_index
from .core.stats import LabelStats, labeling_stats, top_label_holders
from .core.order import LevelOrder
from .core.orders import ORDER_STRATEGIES
from .core.reduction import ReductionReport
from .datasets import DATASET_NAMES, load as load_dataset
from .errors import (
    DatasetError,
    GraphError,
    IndexStateError,
    NotADagError,
    OrderError,
    ReproError,
    UnknownVertexError,
    WorkloadError,
)
from .graph.digraph import DiGraph
from .service.server import ReachabilityService

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "TOLIndex",
    "ReachabilityIndex",
    "ReachabilityService",
    "FrozenTOLIndex",
    "freeze",
    "TOLLabeling",
    "LevelOrder",
    "save_index",
    "load_index",
    "LabelStats",
    "labeling_stats",
    "top_label_holders",
    "ORDER_STRATEGIES",
    "ReductionReport",
    "load_dataset",
    "DATASET_NAMES",
    "ReproError",
    "GraphError",
    "NotADagError",
    "IndexStateError",
    "UnknownVertexError",
    "OrderError",
    "DatasetError",
    "WorkloadError",
    "__version__",
]
