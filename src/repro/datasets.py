"""Named dataset registry: scaled-down stand-ins for the paper's Table 3.

The paper evaluates on 15 datasets (four synthetic RG* DAGs and eleven real
graphs of 1.6M–25M vertices).  The real graphs are not redistributable and
a pure-Python label build at those sizes is infeasible, so each entry here
is a *structure-matched, scaled-down synthetic stand-in* (see DESIGN.md §5):

* ``RG5/RG10/RG20/RG40`` use the same generator recipe as the paper
  (random layered DAG, 8 topological levels, matching average degree);
* the tree-shaped ``uniprot`` entries become random recursive trees;
* the web/social/citation graphs become power-law DAGs matched on average
  degree.

Every entry records the paper's original |V|, |E| and average degree so the
benchmark tables can print "paper-scale vs. our-scale" side by side, and a
``family`` tag benchmarks use to interpret results (e.g. Dagger is expected
to win insertions only on ``tree`` datasets).

Use :func:`load` to materialize a dataset at its default (or a custom)
scale; generation is deterministic per (name, scale, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import DatasetError
from .graph.digraph import DiGraph
from .graph.generators import power_law_dag, random_layered_dag, random_tree_dag

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_NAMES",
    "SYNTHETIC_RG",
    "REAL_STANDINS",
    "load",
    "dataset_names",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one benchmark dataset.

    Attributes
    ----------
    name:
        Canonical name (matches the paper's Table 3 row).
    family:
        ``"layered"`` (RG*), ``"tree"`` (uniprot-like) or ``"power-law"``.
    paper_vertices / paper_edges:
        The original dataset's size, for reporting.
    avg_degree:
        Average degree to match (paper's Table 3 column).
    default_vertices:
        Stand-in size used when no explicit scale is given.
    num_levels:
        Topological levels for the layered family (paper: 8).
    """

    name: str
    family: str
    paper_vertices: int
    paper_edges: int
    avg_degree: float
    default_vertices: int
    num_levels: int = 8

    def generate(
        self, *, num_vertices: Optional[int] = None, seed: int = 0
    ) -> DiGraph:
        """Materialize the stand-in graph deterministically."""
        n = num_vertices if num_vertices is not None else self.default_vertices
        if n <= 0:
            raise DatasetError(f"dataset size must be positive, got {n}")
        if self.family == "layered":
            return random_layered_dag(
                n, self.avg_degree, num_levels=self.num_levels, seed=seed
            )
        if self.family == "tree":
            return random_tree_dag(n, seed=seed)
        if self.family == "power-law":
            return power_law_dag(n, self.avg_degree, seed=seed)
        raise DatasetError(f"unknown dataset family {self.family!r}")


def _m(millions: float) -> int:
    return int(millions * 1_000_000)


#: The paper's four synthetic datasets (Table 3, top block).
SYNTHETIC_RG: tuple[DatasetSpec, ...] = (
    DatasetSpec("RG5", "layered", _m(1.0), _m(5.0), 5.0, 1200),
    DatasetSpec("RG10", "layered", _m(1.0), _m(10.0), 10.0, 1200),
    DatasetSpec("RG20", "layered", _m(1.0), _m(20.0), 20.0, 1200),
    DatasetSpec("RG40", "layered", _m(1.0), _m(40.0), 40.0, 1200),
)

#: Stand-ins for the paper's eleven real datasets (Table 3, bottom block).
REAL_STANDINS: tuple[DatasetSpec, ...] = (
    DatasetSpec("uniprot22m", "tree", _m(1.6), _m(1.6), 1.00, 2400),
    DatasetSpec("uniprot100m", "tree", _m(16.1), _m(16.1), 1.00, 3200),
    DatasetSpec("uniprot150m", "tree", _m(25.0), _m(25.0), 1.00, 4000),
    DatasetSpec("wiki", "power-law", _m(2.3), _m(2.3), 1.01, 2400),
    DatasetSpec("Twitter", "power-law", _m(16.6), _m(18.4), 1.10, 3200),
    DatasetSpec("Yago2", "power-law", _m(16.1), _m(25.7), 1.59, 3200),
    DatasetSpec("Web-UK", "power-law", _m(20.4), _m(37.8), 1.85, 3200),
    DatasetSpec("citeseerx", "power-law", _m(6.3), _m(14.8), 2.36, 2400),
    DatasetSpec("GovWild", "power-law", _m(8.0), _m(23.7), 2.95, 2400),
    DatasetSpec("patent", "power-law", _m(3.7), _m(15.7), 4.27, 2400),
    DatasetSpec("go-uniprot", "power-law", _m(7.0), _m(34.8), 4.99, 2400),
)

#: All datasets, keyed by lower-cased name.
DATASETS: dict[str, DatasetSpec] = {
    spec.name.lower(): spec for spec in SYNTHETIC_RG + REAL_STANDINS
}

#: Canonical dataset names in Table-3 order.
DATASET_NAMES: tuple[str, ...] = tuple(
    spec.name for spec in SYNTHETIC_RG + REAL_STANDINS
)


def dataset_names() -> tuple[str, ...]:
    """Return all dataset names in the paper's Table 3 order."""
    return DATASET_NAMES


def load(
    name: str, *, num_vertices: Optional[int] = None, seed: int = 0
) -> DiGraph:
    """Materialize the named dataset's stand-in graph.

    Parameters
    ----------
    name:
        Case-insensitive dataset name (see :data:`DATASET_NAMES`).
    num_vertices:
        Override the default stand-in size.
    seed:
        Generator seed; same (name, size, seed) always yields the same
        graph.

    Raises
    ------
    DatasetError
        For unknown names or invalid sizes.
    """
    try:
        spec = DATASETS[name.lower()]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.generate(num_vertices=num_vertices, seed=seed)
