"""Plain-text rendering of benchmark results in the paper's layout.

Figures in the paper are bar charts over (dataset × method); here each one
becomes an aligned text table with datasets as rows and methods as columns,
which is the faithful textual equivalent of "the same rows/series".
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional, Union

__all__ = [
    "format_table",
    "format_seconds",
    "format_millis",
    "format_bytes",
    "format_ratio",
]

Cell = Union[str, float, int, None]


def format_seconds(value: Optional[float]) -> str:
    """Render a duration in seconds with engineering-friendly units."""
    if value is None:
        return "—"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    if value >= 1e-6:
        return f"{value * 1e6:.2f}us"
    return f"{value * 1e9:.0f}ns"


def format_millis(value: Optional[float]) -> str:
    """Render a duration given in seconds as milliseconds (paper's unit)."""
    if value is None:
        return "—"
    return f"{value * 1e3:.3g}ms"


def format_bytes(value: Optional[float]) -> str:
    """Render a byte count with binary units."""
    if value is None:
        return "—"
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    raise AssertionError("unreachable")


def format_ratio(value: Optional[float]) -> str:
    """Render a fraction as a percentage (Table 4's ΔL/|L| column)."""
    if value is None:
        return "—"
    return f"{value * 100:.2f}%"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    *,
    note: str = "",
) -> str:
    """Render an aligned monospace table with a title and optional note."""
    text_rows = [
        [cell if isinstance(cell, str) else ("—" if cell is None else str(cell))
         for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        """Render one padded row."""
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(list(headers)), rule]
    out.extend(line(row) for row in text_rows)
    out.append(rule)
    if note:
        out.append(note)
    return "\n".join(out)
