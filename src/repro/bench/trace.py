"""Update traces: a replayable log format for dynamic-graph workloads.

The paper's update experiment (delete 10⁴ vertices, re-insert them) is one
fixed protocol; real systems want to capture *their* mutation streams and
replay them against candidate indices.  A trace is a plain-text op log:

::

    # tol-trace v1
    addv 17 in=3,5 out=9
    adde 2 9
    query 3 9
    delv 5
    dele 2 9

One operation per line; ``#`` comments; vertex tokens that parse as
integers become integers.  ``query`` lines carry the expected workload —
replaying interleaves them with the mutations, which is how update-induced
index decay (e.g. Dagger's) actually shows up in production.

:func:`generate_trace` synthesizes a random valid trace from a seed graph;
:func:`replay_trace` runs a trace against any index adapter from
:mod:`repro.bench.harness` and reports per-op-class timing totals.
"""

from __future__ import annotations

import random
import time
from collections.abc import Hashable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..errors import WorkloadError
from ..graph.digraph import DiGraph
from ..graph.traversal import bidirectional_reachable

__all__ = [
    "TraceOp",
    "Trace",
    "ReplayReport",
    "parse_trace",
    "format_trace",
    "read_trace",
    "write_trace",
    "generate_trace",
    "replay_trace",
]

Vertex = Hashable
PathLike = Union[str, Path]

_HEADER = "# tol-trace v1"
_KINDS = ("addv", "delv", "adde", "dele", "query")


@dataclass(frozen=True)
class TraceOp:
    """One trace operation.

    ``kind`` is one of ``addv`` (args: vertex, in-list, out-list), ``delv``
    (vertex), ``adde``/``dele`` (tail, head) or ``query`` (source, target).
    """

    kind: str
    vertex: Optional[Vertex] = None
    ins: tuple[Vertex, ...] = ()
    outs: tuple[Vertex, ...] = ()
    tail: Optional[Vertex] = None
    head: Optional[Vertex] = None

    def render(self) -> str:
        """Serialize this op as one trace line."""
        if self.kind == "addv":
            parts = [f"addv {self.vertex}"]
            if self.ins:
                parts.append("in=" + ",".join(str(v) for v in self.ins))
            if self.outs:
                parts.append("out=" + ",".join(str(v) for v in self.outs))
            return " ".join(parts)
        if self.kind == "delv":
            return f"delv {self.vertex}"
        if self.kind in ("adde", "dele"):
            return f"{self.kind} {self.tail} {self.head}"
        if self.kind == "query":
            return f"query {self.tail} {self.head}"
        raise WorkloadError(f"unknown trace op kind {self.kind!r}")


@dataclass
class Trace:
    """An ordered list of :class:`TraceOp`."""

    ops: list[TraceOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def counts(self) -> dict[str, int]:
        """Return ``{kind: occurrences}``."""
        out = {kind: 0 for kind in _KINDS}
        for op in self.ops:
            out[op.kind] += 1
        return out


def _vertex(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def _vertex_csv(text: str) -> tuple[Vertex, ...]:
    return tuple(_vertex(tok) for tok in text.split(",") if tok)


def parse_trace(text: str) -> Trace:
    """Parse trace *text* (see module docstring for the grammar)."""
    ops: list[TraceOp] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        try:
            if kind == "addv":
                vertex = _vertex(tokens[1])
                ins: tuple[Vertex, ...] = ()
                outs: tuple[Vertex, ...] = ()
                for extra in tokens[2:]:
                    if extra.startswith("in="):
                        ins = _vertex_csv(extra[3:])
                    elif extra.startswith("out="):
                        outs = _vertex_csv(extra[4:])
                    else:
                        raise WorkloadError(
                            f"line {lineno}: unknown addv argument {extra!r}"
                        )
                ops.append(TraceOp("addv", vertex=vertex, ins=ins, outs=outs))
            elif kind == "delv":
                ops.append(TraceOp("delv", vertex=_vertex(tokens[1])))
            elif kind in ("adde", "dele", "query"):
                ops.append(
                    TraceOp(kind, tail=_vertex(tokens[1]), head=_vertex(tokens[2]))
                )
            else:
                raise WorkloadError(f"line {lineno}: unknown op {kind!r}")
        except IndexError:
            raise WorkloadError(
                f"line {lineno}: op {kind!r} is missing arguments"
            ) from None
    return Trace(ops)


def format_trace(trace: Trace) -> str:
    """Serialize *trace* (inverse of :func:`parse_trace`)."""
    lines = [_HEADER]
    lines.extend(op.render() for op in trace.ops)
    return "\n".join(lines) + "\n"


def read_trace(path: PathLike) -> Trace:
    """Read a trace file."""
    return parse_trace(Path(path).read_text(encoding="utf-8"))


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace file."""
    Path(path).write_text(format_trace(trace), encoding="utf-8")


def generate_trace(
    graph: DiGraph,
    num_ops: int,
    *,
    seed: int = 0,
    query_fraction: float = 0.5,
    vertex_namespace: str = "t",
    acyclic: bool = False,
) -> Trace:
    """Synthesize a random valid trace against (a copy of) *graph*.

    Mutations are split evenly between vertex inserts, vertex deletes,
    edge inserts and edge deletes; each op is validated against the
    evolving graph so the trace replays cleanly.  Inserted vertices are
    named ``{vertex_namespace}0, {vertex_namespace}1, ...`` to avoid
    collisions with existing ids.

    With ``acyclic=True`` every mutation additionally preserves
    acyclicity, producing a trace any DAG-only index can absorb.
    """
    if not 0 <= query_fraction <= 1:
        raise WorkloadError("query_fraction must be within [0, 1]")
    rng = random.Random(seed)
    live = graph.copy()
    ops: list[TraceOp] = []
    fresh = 0
    while len(ops) < num_ops:
        vertices = list(live.vertices())
        if rng.random() < query_fraction and vertices:
            s, t = rng.choice(vertices), rng.choice(vertices)
            ops.append(TraceOp("query", tail=s, head=t))
            continue
        roll = rng.random()
        if roll < 0.25 or not vertices:
            name = f"{vertex_namespace}{fresh}"
            fresh += 1
            ins = tuple(v for v in vertices if rng.random() < 2.0 / max(len(vertices), 1))
            outs = tuple(
                v for v in vertices
                if v not in ins and rng.random() < 2.0 / max(len(vertices), 1)
            )
            if acyclic and ins and outs:
                # Drop out-edges whose target reaches an in-neighbor.
                outs = tuple(
                    w for w in outs
                    if not any(bidirectional_reachable(live, w, u) for u in ins)
                )
            live.add_vertex(name)
            for u in ins:
                live.add_edge(u, name)
            for w in outs:
                live.add_edge(name, w)
            ops.append(TraceOp("addv", vertex=name, ins=ins, outs=outs))
        elif roll < 0.5 and len(vertices) > 1:
            victim = rng.choice(vertices)
            live.remove_vertex(victim)
            ops.append(TraceOp("delv", vertex=victim))
        elif roll < 0.75:
            candidates = [
                (a, b)
                for a in vertices
                for b in vertices
                if a != b and not live.has_edge(a, b)
            ]
            if acyclic:
                candidates = [
                    (a, b) for a, b in candidates
                    if not bidirectional_reachable(live, b, a)
                ]
            if not candidates:
                continue
            tail, head = rng.choice(candidates)
            live.add_edge(tail, head)
            ops.append(TraceOp("adde", tail=tail, head=head))
        else:
            edges = list(live.edges())
            if not edges:
                continue
            tail, head = rng.choice(edges)
            live.remove_edge(tail, head)
            ops.append(TraceOp("dele", tail=tail, head=head))
    return Trace(ops)


@dataclass
class ReplayReport:
    """Outcome of replaying a trace against an index.

    ``seconds`` maps each op kind to its total wall time; ``answers``
    holds the query results in trace order; ``skipped`` counts mutations
    the index rejected (e.g. a DAG-only index refusing a cycle-creating
    edge) — zero for the cycle-capable adapters.
    """

    seconds: dict[str, float]
    answers: list[bool]
    operations: int
    skipped: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall time across all op classes."""
        return sum(self.seconds.values())


def replay_trace(index, trace: Trace) -> ReplayReport:
    """Apply *trace* to *index* (any adapter with the harness protocol).

    Edge ops are emulated for adapters that only expose vertex ops by
    raising :class:`WorkloadError` — generate vertex-only traces for those
    (``query_fraction`` plus ``addv``/``delv`` cover the paper's update
    model).
    """
    seconds = {kind: 0.0 for kind in _KINDS}
    answers: list[bool] = []
    skipped = 0
    for op in trace.ops:
        start = time.perf_counter()
        if op.kind == "addv":
            index.insert_vertex(op.vertex, op.ins, op.outs)
        elif op.kind == "delv":
            index.delete_vertex(op.vertex)
        elif op.kind == "adde":
            if not hasattr(index, "insert_edge"):
                raise WorkloadError(
                    f"{type(index).__name__} does not support edge insertion;"
                    " use a vertex-only trace"
                )
            index.insert_edge(op.tail, op.head)
        elif op.kind == "dele":
            if not hasattr(index, "delete_edge"):
                raise WorkloadError(
                    f"{type(index).__name__} does not support edge deletion;"
                    " use a vertex-only trace"
                )
            index.delete_edge(op.tail, op.head)
        else:  # query
            answers.append(index.query(op.tail, op.head))
        seconds[op.kind] += time.perf_counter() - start
    return ReplayReport(
        seconds=seconds,
        answers=answers,
        operations=len(trace.ops),
        skipped=skipped,
    )
