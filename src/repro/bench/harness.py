"""Method registry and measurement loops shared by all experiments.

Every reachability method — the paper's BU/BL, the static competitors, the
dynamic competitor Dagger and the index-free baselines — is exposed behind
one tiny protocol (``query``, ``insert_vertex``, ``delete_vertex``,
``size_bytes``), so the experiment drivers in
:mod:`repro.bench.experiments` can sweep methods uniformly.

Timings use :func:`time.perf_counter`.  Where the paper reports totals
(query time over the whole batch) we total; where it reports averages
(per-insertion / per-deletion time) we average — matching Figures 2–4 and
6–7 row for row.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from ..baselines.dagger import DaggerIndex
from ..baselines.grail import GrailIndex
from ..baselines.search import BFSBaseline, DFSBaseline
from ..baselines.tree_cover import TreeCoverIndex
from ..core.index import ReachabilityIndex, TOLIndex
from ..errors import WorkloadError
from ..graph.digraph import DiGraph
from .workloads import QueryWorkload, UpdateWorkload

__all__ = [
    "MethodSpec",
    "METHODS",
    "DYNAMIC_METHODS",
    "STATIC_METHODS",
    "build_method",
    "BuildResult",
    "measure_build",
    "measure_queries",
    "measure_updates",
    "UpdateTimings",
]

Vertex = Hashable


class _TOLAdapter:
    """A TOL method tagged with a paper name for reporting.

    Wraps :class:`ReachabilityIndex` — the full system including the SCC
    condensation — so the measured update costs are the honest end-to-end
    ones (Dagger's adapter likewise includes its SCC machinery) and
    cycle-creating trace operations are handled rather than rejected.
    """

    def __init__(self, name: str, order: str, graph: DiGraph) -> None:
        self.name = name
        self._index = ReachabilityIndex(graph, order=order)

    def query(self, s: Vertex, t: Vertex) -> bool:
        """Answer ``s -> t``."""
        return self._index.query(s, t)

    def insert_vertex(self, v, in_neighbors=(), out_neighbors=()) -> None:
        """Insert a vertex with its edges (Algorithms 1-3 via the facade)."""
        self._index.insert_vertex(v, in_neighbors, out_neighbors)

    def delete_vertex(self, v) -> None:
        """Delete a vertex (Algorithm 4 via the facade)."""
        self._index.delete_vertex(v)

    def insert_edge(self, tail, head) -> None:
        """Insert an edge (SCC merges handled by the facade)."""
        self._index.insert_edge(tail, head)

    def delete_edge(self, tail, head) -> None:
        """Delete an edge (SCC splits handled by the facade)."""
        self._index.delete_edge(tail, head)

    def size_bytes(self) -> int:
        """Index size in bytes (4 bytes per label)."""
        return self._index.size_bytes()

    @property
    def tol(self) -> TOLIndex:
        """The underlying DAG-level TOL index."""
        return self._index.tol


@dataclass(frozen=True)
class MethodSpec:
    """A named method: how to build it, and what it supports.

    Attributes
    ----------
    name:
        Paper name (``BU``, ``BL``, ``TF``, ``DL``, ``HL``, ``Dagger``,
        ``GRAIL``, ``BFS``, ``DFS``).
    build:
        ``graph -> adapter``.
    dynamic:
        Whether the adapter supports vertex insertion/deletion.
    """

    name: str
    build: Callable[[DiGraph], object]
    dynamic: bool


#: All benchmarkable methods, keyed by paper name.
METHODS: dict[str, MethodSpec] = {
    "BU": MethodSpec("BU", lambda g: _TOLAdapter("BU", "butterfly-u", g), True),
    "BL": MethodSpec("BL", lambda g: _TOLAdapter("BL", "butterfly-l", g), True),
    "TF": MethodSpec("TF", lambda g: _TOLAdapter("TF", "topological", g), True),
    "DL": MethodSpec("DL", lambda g: _TOLAdapter("DL", "degree", g), True),
    "HL": MethodSpec("HL", lambda g: _TOLAdapter("HL", "hierarchical", g), True),
    "Dagger": MethodSpec("Dagger", lambda g: DaggerIndex(g), True),
    "GRAIL": MethodSpec("GRAIL", lambda g: GrailIndex(g), False),
    "TreeCover": MethodSpec("TreeCover", lambda g: TreeCoverIndex(g), False),
    "BFS": MethodSpec("BFS", lambda g: BFSBaseline(g), True),
    "DFS": MethodSpec("DFS", lambda g: DFSBaseline(g), True),
}

#: The method line-ups of the paper's dynamic (Figs. 2–4) and static
#: (Figs. 5–7) experiments.
DYNAMIC_METHODS: tuple[str, ...] = ("BU", "BL", "Dagger")
STATIC_METHODS: tuple[str, ...] = ("BU", "BL", "HL", "DL", "TF", "Dagger")


def build_method(name: str, graph: DiGraph):
    """Instantiate the named method's index over *graph*."""
    try:
        spec = METHODS[name]
    except KeyError:
        known = ", ".join(METHODS)
        raise WorkloadError(f"unknown method {name!r}; known: {known}") from None
    return spec.build(graph)


@dataclass
class BuildResult:
    """Preprocessing outcome: the adapter, wall time and index size."""

    method: str
    index: object
    build_seconds: float
    index_bytes: int


@contextmanager
def _gc_paused():
    """Suspend the cyclic GC around a timed region (it fires at arbitrary
    allocation counts and injects multi-hundred-ms spikes into one-shot
    build timings)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def measure_build(name: str, graph: DiGraph) -> BuildResult:
    """Build the named method's index, timing it (Figure 6's metric)."""
    with _gc_paused():
        start = time.perf_counter()
        index = build_method(name, graph)
        elapsed = time.perf_counter() - start
    return BuildResult(name, index, elapsed, index.size_bytes())


def measure_queries(index, workload: QueryWorkload) -> float:
    """Total seconds to answer the whole batch (Figures 3/7's metric)."""
    query = index.query
    pairs = workload.pairs
    with _gc_paused():
        start = time.perf_counter()
        for s, t in pairs:
            query(s, t)
        return time.perf_counter() - start


@dataclass
class UpdateTimings:
    """Per-operation averages over a delete-then-reinsert workload."""

    avg_delete_seconds: float
    avg_insert_seconds: float
    operations: int
    delete_seconds: list[float] = field(default_factory=list)
    insert_seconds: list[float] = field(default_factory=list)


def measure_updates(
    index,
    graph: DiGraph,
    workload: UpdateWorkload,
    *,
    record_series: bool = False,
) -> UpdateTimings:
    """Run the paper's update protocol and time each operation.

    Deletes ``workload.victims`` one at a time (recording each victim's
    adjacency first), then re-inserts them in reverse order.  *graph* is a
    scratch copy tracking current adjacency; it ends identical to its
    input state.
    """
    scratch = graph.copy()
    adjacency: dict[Vertex, tuple[tuple[Vertex, ...], tuple[Vertex, ...]]] = {}
    delete_times: list[float] = []
    insert_times: list[float] = []

    for v in workload.victims:
        adjacency[v] = (
            tuple(scratch.in_neighbors(v)),
            tuple(scratch.out_neighbors(v)),
        )
        scratch.remove_vertex(v)
        start = time.perf_counter()
        index.delete_vertex(v)
        delete_times.append(time.perf_counter() - start)

    for v in reversed(workload.victims):
        ins, outs = adjacency[v]
        # Only wire edges whose other endpoint currently exists; the rest
        # reappear when their endpoint is re-inserted later.
        live_ins = tuple(u for u in ins if u in scratch)
        live_outs = tuple(w for w in outs if w in scratch)
        start = time.perf_counter()
        index.insert_vertex(v, live_ins, live_outs)
        insert_times.append(time.perf_counter() - start)
        scratch.add_vertex(v)
        for u in live_ins:
            scratch.add_edge(u, v)
        for w in live_outs:
            scratch.add_edge(v, w)

    n = len(workload.victims)
    return UpdateTimings(
        avg_delete_seconds=sum(delete_times) / n,
        avg_insert_seconds=sum(insert_times) / n,
        operations=n,
        delete_seconds=delete_times if record_series else [],
        insert_seconds=insert_times if record_series else [],
    )
