"""ASCII bar charts: render ExperimentResults the way the paper draws them.

The paper's Figures 2–7 are grouped log-scale bar charts (one group per
dataset, one bar per method).  :func:`render_bar_chart` reproduces that as
monospace text, so ``repro experiments --chart`` and the benchmark logs can
show the *shape* of each figure — who wins and by how many decades —
without a plotting dependency.

Example output (abridged)::

    Figure 7: total query time on static graphs  [log scale]
    RG5        BU     |■■■■■■■■                      | 0.785ms
               Dagger |■■■■■■■■■■■■■■■■■■■■■■■■      | 8.63ms
"""

from __future__ import annotations

import math
from typing import Optional

from .experiments import ExperimentResult
from .tables import format_seconds

__all__ = ["render_bar_chart"]

_BAR = "■"


def _pick_formatter(result: ExperimentResult):
    """Reuse the result's own column formatter when it has a uniform one."""
    formatters = set()
    for i in range(1, len(result.headers)):
        formatters.add(result.formatters.get(i))
    formatters.discard(None)
    if len(formatters) == 1:
        return formatters.pop()
    return format_seconds


def render_bar_chart(
    result: ExperimentResult,
    *,
    width: int = 40,
    log: bool = True,
    datasets: Optional[list[str]] = None,
) -> str:
    """Render *result* as a grouped horizontal bar chart.

    Parameters
    ----------
    width:
        Bar area width in characters.
    log:
        Log-scale bars (the paper's axes are logarithmic).  Falls back to
        linear when any value is zero or the dynamic range is tiny.
    datasets:
        Optional subset/order of dataset rows.
    """
    methods = result.headers[1:]
    fmt = _pick_formatter(result)
    rows = result.rows
    if datasets is not None:
        wanted = set(datasets)
        rows = [row for row in rows if row[0] in wanted]

    numeric = [
        float(v) for row in rows for v in row[1:] if isinstance(v, (int, float))
    ]
    if not numeric:
        return f"{result.title}  [no numeric data]"
    lo, hi = min(numeric), max(numeric)
    use_log = log and lo > 0 and hi / lo > 10

    def bar_len(value: float) -> int:
        """Bar length in characters for *value* under the chosen scale."""
        if hi <= 0:
            return 0
        if use_log:
            span = math.log10(hi) - math.log10(lo) or 1.0
            frac = (math.log10(value) - math.log10(lo)) / span if value > 0 else 0.0
        else:
            frac = value / hi
        return max(1 if value > 0 else 0, round(frac * width))

    method_width = max(len(m) for m in methods)
    dataset_width = max(len(str(row[0])) for row in rows)
    scale_note = "log scale" if use_log else "linear scale"
    lines = [f"{result.title}  [{scale_note}]"]
    for row in rows:
        name = str(row[0])
        for i, method in enumerate(methods):
            value = row[1 + i]
            prefix = name if i == 0 else ""
            if not isinstance(value, (int, float)):
                lines.append(
                    f"{prefix:<{dataset_width}} {method:<{method_width}} | {value}"
                )
                continue
            filled = bar_len(float(value))
            bar = (_BAR * filled).ljust(width)
            lines.append(
                f"{prefix:<{dataset_width}} {method:<{method_width}} "
                f"|{bar}| {fmt(value)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
