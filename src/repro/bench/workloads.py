"""Query and update workload generators (Section 8, "Datasets and Queries").

The paper's query workload: for each query, draw two random vertices and
use the one with the *lower* topological rank as the source — so no query
can be answered by the trivial rank comparison ``o(s) < o(t)`` (a rank
filter would answer any pair where the source ranks higher).  The paper
also reports an unconstrained variant in its technical report; both are
available here via ``mode``.

The update workload: remove ``k`` random vertices one at a time, then
re-insert them in reverse order of removal — averaging per-operation times
over the sequence, exactly as Figures 2 and 4 do.
"""

from __future__ import annotations

import random
from collections.abc import Hashable
from dataclasses import dataclass

from ..errors import WorkloadError
from ..graph.dag import topological_rank
from ..graph.digraph import DiGraph

__all__ = [
    "QueryWorkload",
    "UpdateWorkload",
    "generate_queries",
    "generate_updates",
    "generate_zipfian_queries",
]

Vertex = Hashable


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of reachability queries.

    Attributes
    ----------
    pairs:
        ``(source, terminal)`` pairs.
    mode:
        ``"topo-aware"`` (the paper's default) or ``"uniform"``.
    seed:
        Generator seed, for provenance in reports.
    """

    pairs: tuple[tuple[Vertex, Vertex], ...]
    mode: str
    seed: int

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


@dataclass(frozen=True)
class UpdateWorkload:
    """A reproducible delete-then-reinsert vertex sequence.

    ``victims`` lists vertices in deletion order; the re-insertion phase
    replays them reversed, as the paper does.
    """

    victims: tuple[Vertex, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.victims)


def generate_queries(
    graph: DiGraph,
    count: int,
    *,
    mode: str = "topo-aware",
    seed: int = 0,
) -> QueryWorkload:
    """Generate *count* reachability queries on *graph*.

    Parameters
    ----------
    mode:
        ``"topo-aware"`` orients every random pair so the source has the
        lower topological rank (requires a DAG); ``"uniform"`` leaves
        pairs as drawn.

    Raises
    ------
    WorkloadError
        On an empty graph, a non-positive count or an unknown mode.
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    vertices = list(graph.vertices())
    if not vertices:
        raise WorkloadError("cannot generate queries on an empty graph")
    rng = random.Random(seed)

    if mode == "topo-aware":
        rank = topological_rank(graph)
        pairs = []
        for _ in range(count):
            s = rng.choice(vertices)
            t = rng.choice(vertices)
            if rank[s] > rank[t]:
                s, t = t, s
            pairs.append((s, t))
    elif mode == "uniform":
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(count)
        ]
    else:
        raise WorkloadError(f"unknown query mode {mode!r}")
    return QueryWorkload(tuple(pairs), mode, seed)


def generate_zipfian_queries(
    graph: DiGraph,
    count: int,
    *,
    skew: float = 1.0,
    seed: int = 0,
) -> QueryWorkload:
    """Generate *count* queries with Zipf-distributed endpoint popularity.

    Serving workloads are rarely uniform: a few hot entities dominate the
    query stream (the assumption behind every result cache).  Here each
    vertex gets a popularity rank (a seed-determined random permutation)
    and is drawn with probability proportional to ``1 / rank**skew``;
    both endpoints are drawn independently from the same distribution.
    ``skew=0`` degenerates to the uniform workload; larger values
    concentrate more probability mass on the head, driving up the repeat
    rate — and therefore the achievable cache hit rate — without changing
    the query semantics.

    Raises
    ------
    WorkloadError
        On an empty graph, a non-positive count or a negative skew.
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    if skew < 0:
        raise WorkloadError(f"skew must be >= 0, got {skew}")
    vertices = list(graph.vertices())
    if not vertices:
        raise WorkloadError("cannot generate queries on an empty graph")
    rng = random.Random(seed)
    rng.shuffle(vertices)  # rank assignment is part of the seeded draw
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(vertices))]
    sources = rng.choices(vertices, weights=weights, k=count)
    targets = rng.choices(vertices, weights=weights, k=count)
    return QueryWorkload(tuple(zip(sources, targets)), "zipfian", seed)


def generate_updates(
    graph: DiGraph, count: int, *, seed: int = 0
) -> UpdateWorkload:
    """Pick *count* distinct random vertices to delete (and re-insert).

    Raises
    ------
    WorkloadError
        If *count* exceeds the number of vertices or is non-positive.
    """
    if count <= 0:
        raise WorkloadError(f"update count must be positive, got {count}")
    vertices = list(graph.vertices())
    if count > len(vertices):
        raise WorkloadError(
            f"cannot delete {count} vertices from a graph with "
            f"{len(vertices)}"
        )
    rng = random.Random(seed)
    return UpdateWorkload(tuple(rng.sample(vertices, count)), seed)
