"""Query and update workload generators (Section 8, "Datasets and Queries").

The paper's query workload: for each query, draw two random vertices and
use the one with the *lower* topological rank as the source — so no query
can be answered by the trivial rank comparison ``o(s) < o(t)`` (a rank
filter would answer any pair where the source ranks higher).  The paper
also reports an unconstrained variant in its technical report; both are
available here via ``mode``.

The update workload: remove ``k`` random vertices one at a time, then
re-insert them in reverse order of removal — averaging per-operation times
over the sequence, exactly as Figures 2 and 4 do.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Hashable
from dataclasses import dataclass

from ..errors import WorkloadError
from ..graph.dag import topological_rank
from ..graph.digraph import DiGraph

__all__ = [
    "QueryWorkload",
    "UpdateWorkload",
    "ZipfianPairSource",
    "generate_queries",
    "generate_updates",
    "generate_zipfian_queries",
]

Vertex = Hashable


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of reachability queries.

    Attributes
    ----------
    pairs:
        ``(source, terminal)`` pairs.
    mode:
        ``"topo-aware"`` (the paper's default) or ``"uniform"``.
    seed:
        Generator seed, for provenance in reports.
    """

    pairs: tuple[tuple[Vertex, Vertex], ...]
    mode: str
    seed: int

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


@dataclass(frozen=True)
class UpdateWorkload:
    """A reproducible delete-then-reinsert vertex sequence.

    ``victims`` lists vertices in deletion order; the re-insertion phase
    replays them reversed, as the paper does.
    """

    victims: tuple[Vertex, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.victims)


def generate_queries(
    graph: DiGraph,
    count: int,
    *,
    mode: str = "topo-aware",
    seed: int = 0,
) -> QueryWorkload:
    """Generate *count* reachability queries on *graph*.

    Parameters
    ----------
    mode:
        ``"topo-aware"`` orients every random pair so the source has the
        lower topological rank (requires a DAG); ``"uniform"`` leaves
        pairs as drawn.

    Raises
    ------
    WorkloadError
        On an empty graph, a non-positive count or an unknown mode.
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    vertices = list(graph.vertices())
    if not vertices:
        raise WorkloadError("cannot generate queries on an empty graph")
    rng = random.Random(seed)

    if mode == "topo-aware":
        rank = topological_rank(graph)
        pairs = []
        for _ in range(count):
            s = rng.choice(vertices)
            t = rng.choice(vertices)
            if rank[s] > rank[t]:
                s, t = t, s
            pairs.append((s, t))
    elif mode == "uniform":
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(count)
        ]
    else:
        raise WorkloadError(f"unknown query mode {mode!r}")
    return QueryWorkload(tuple(pairs), mode, seed)


class ZipfianPairSource:
    """A seeded, unbounded stream of Zipf-skewed query pairs.

    The load generator's worker processes each own one of these: unlike
    :func:`generate_zipfian_queries` it needs only a vertex *sequence*
    (picklable across ``multiprocessing``), precomputes the popularity
    weights once, and can be drawn from forever — each :meth:`pairs`
    call continues the same seeded stream.

    Each vertex gets a popularity rank (a seed-determined random
    permutation) and is drawn with probability proportional to
    ``1 / rank**skew``; both endpoints are drawn independently from the
    same distribution.  ``skew=0`` degenerates to uniform; larger values
    concentrate mass on the head, driving up the repeat rate — and
    therefore the achievable hit rate of every dedup/cache layer between
    the client and the index.

    Raises
    ------
    WorkloadError
        On an empty vertex set or a negative skew.
    """

    def __init__(self, vertices, *, skew: float = 1.0, seed: int = 0) -> None:
        if skew < 0:
            raise WorkloadError(f"skew must be >= 0, got {skew}")
        self._vertices = list(vertices)
        if not self._vertices:
            raise WorkloadError("cannot draw queries from an empty vertex set")
        self.skew = skew
        self.seed = seed
        self._rng = random.Random(seed)
        # Rank assignment is part of the seeded draw.
        self._rng.shuffle(self._vertices)
        self._weights = [
            1.0 / (rank + 1) ** skew for rank in range(len(self._vertices))
        ]
        # ``random.choices(weights=...)`` re-accumulates the weight list
        # on every call; handing it the cumulative form instead makes a
        # draw pure bisection, which matters when the load generator
        # calls this per request.
        self._cum_weights = list(itertools.accumulate(self._weights))

    def pairs(self, count: int) -> list[tuple[Vertex, Vertex]]:
        """Draw the next *count* ``(source, target)`` pairs."""
        if count <= 0:
            raise WorkloadError(f"query count must be positive, got {count}")
        sources = self._rng.choices(
            self._vertices, cum_weights=self._cum_weights, k=count
        )
        targets = self._rng.choices(
            self._vertices, cum_weights=self._cum_weights, k=count
        )
        return list(zip(sources, targets))


def generate_zipfian_queries(
    graph: DiGraph,
    count: int,
    *,
    skew: float = 1.0,
    seed: int = 0,
) -> QueryWorkload:
    """Generate *count* queries with Zipf-distributed endpoint popularity.

    Serving workloads are rarely uniform: a few hot entities dominate the
    query stream (the assumption behind every result cache); see
    :class:`ZipfianPairSource` for the distribution.  This wrapper draws
    one fixed-size batch from a fresh source and packages it as a
    reproducible :class:`QueryWorkload`.

    Raises
    ------
    WorkloadError
        On an empty graph, a non-positive count or a negative skew.
    """
    if count <= 0:
        raise WorkloadError(f"query count must be positive, got {count}")
    source = ZipfianPairSource(graph.vertices(), skew=skew, seed=seed)
    return QueryWorkload(tuple(source.pairs(count)), "zipfian", seed)


def generate_updates(
    graph: DiGraph, count: int, *, seed: int = 0
) -> UpdateWorkload:
    """Pick *count* distinct random vertices to delete (and re-insert).

    Raises
    ------
    WorkloadError
        If *count* exceeds the number of vertices or is non-positive.
    """
    if count <= 0:
        raise WorkloadError(f"update count must be positive, got {count}")
    vertices = list(graph.vertices())
    if count > len(vertices):
        raise WorkloadError(
            f"cannot delete {count} vertices from a graph with "
            f"{len(vertices)}"
        )
    rng = random.Random(seed)
    return UpdateWorkload(tuple(rng.sample(vertices, count)), seed)
