"""One driver per table/figure of the paper's Section 8.

Every driver returns an :class:`ExperimentResult` whose ``rows`` hold the
raw numbers and whose ``render()`` prints the paper-style table.  The
pytest-benchmark targets in ``benchmarks/`` and the runnable examples both
call these drivers, so the numbers in ``bench_output.txt`` and the numbers
a user reproduces by hand are the same code path.

Experiment ↔ paper mapping
--------------------------
=====================  ==================================================
:func:`table3_datasets`      Table 3 — dataset statistics
:func:`fig2_insertion`       Figure 2 — average vertex-insertion time
:func:`fig3_query_dynamic`   Figure 3 — total query time on dynamic graphs
:func:`fig4_deletion`        Figure 4 — average vertex-deletion time
:func:`fig5_index_size`      Figure 5 — index sizes, static line-up
:func:`fig6_preprocessing`   Figure 6 — preprocessing time, static line-up
:func:`fig7_query_static`    Figure 7 — total query time, static line-up
:func:`table4_label_reduction`  Table 4 — iterative label reduction
=====================  ==================================================

All experiments run on the scaled-down stand-ins of
:mod:`repro.datasets`; pass ``num_vertices`` to scale them up or down
uniformly, and ``datasets`` to restrict the rows.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from .. import datasets as ds
from ..core.index import TOLIndex
from .harness import (
    DYNAMIC_METHODS,
    STATIC_METHODS,
    build_method,
    measure_build,
    measure_queries,
    measure_updates,
)
from .tables import (
    format_bytes,
    format_millis,
    format_ratio,
    format_seconds,
    format_table,
)
from .workloads import generate_queries, generate_updates

__all__ = [
    "ExperimentResult",
    "run_update_sweep",
    "run_static_sweep",
    "table3_datasets",
    "fig2_insertion",
    "fig3_query_dynamic",
    "fig4_deletion",
    "fig5_index_size",
    "fig6_preprocessing",
    "fig7_query_static",
    "table4_label_reduction",
    "ALL_EXPERIMENTS",
]

#: Default per-experiment workload sizes (scaled from the paper's 10^6
#: queries / 10^4 updates to suit the scaled-down datasets).
DEFAULT_QUERIES = 2000
DEFAULT_UPDATES = 60


@dataclass
class ExperimentResult:
    """Raw rows plus presentation for one experiment.

    Attributes
    ----------
    name:
        Experiment id, e.g. ``"fig2"``.
    title:
        Human-readable title matching the paper caption.
    headers:
        Column names of :attr:`rows`.
    rows:
        One entry per dataset; cells are raw numbers (seconds / bytes /
        ratios) or strings.
    note:
        Rendering footnote (units, workload sizes).
    formatters:
        Per-column formatting callables used by :meth:`render`.
    """

    name: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    note: str = ""
    formatters: dict[int, object] = field(default_factory=dict)

    def cell(self, dataset: str, column: str):
        """Look up one raw cell by dataset row and column name."""
        col = self.headers.index(column)
        for row in self.rows:
            if row[0] == dataset:
                return row[col]
        raise KeyError(dataset)

    def render(self) -> str:
        """Return the aligned text table."""
        formatted = [
            [
                self.formatters.get(i, str)(cell) if not isinstance(cell, str) else cell
                for i, cell in enumerate(row)
            ]
            for row in self.rows
        ]
        return format_table(self.title, self.headers, formatted, note=self.note)


def _dataset_list(names: Optional[Sequence[str]]) -> list[str]:
    return list(names) if names is not None else list(ds.DATASET_NAMES)


# ----------------------------------------------------------------------
# Table 3 — datasets
# ----------------------------------------------------------------------

def table3_datasets(
    datasets: Optional[Sequence[str]] = None,
    *,
    num_vertices: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 3: per-dataset |V|, |E| and average degree, paper vs stand-in."""
    result = ExperimentResult(
        name="table3",
        title="Table 3: datasets (paper scale vs. synthetic stand-in)",
        headers=[
            "dataset", "family", "paper |V|", "paper |E|", "paper deg",
            "|V|", "|E|", "avg deg",
        ],
        note="Stand-ins are structure-matched synthetic graphs; see DESIGN.md §5.",
    )
    for name in _dataset_list(datasets):
        spec = ds.DATASETS[name.lower()]
        graph = spec.generate(num_vertices=num_vertices, seed=seed)
        result.rows.append([
            spec.name,
            spec.family,
            f"{spec.paper_vertices / 1e6:.1f}M",
            f"{spec.paper_edges / 1e6:.1f}M",
            f"{spec.avg_degree:.2f}",
            graph.num_vertices,
            graph.num_edges,
            f"{graph.average_degree():.2f}",
        ])
    return result


# ----------------------------------------------------------------------
# Figures 2 and 4 — dynamic updates
# ----------------------------------------------------------------------

def run_update_sweep(
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = DYNAMIC_METHODS,
    *,
    num_vertices: Optional[int] = None,
    num_updates: int = DEFAULT_UPDATES,
    seed: int = 0,
) -> dict[str, dict[str, object]]:
    """Shared runner behind Figures 2 and 4: per (dataset, method)
    delete/insert timing averages.  Exposed so callers (the benchmark
    suite) can compute the sweep once and feed it to both figures."""
    out: dict[str, dict[str, object]] = {}
    for name in _dataset_list(datasets):
        graph = ds.load(name, num_vertices=num_vertices, seed=seed)
        workload = generate_updates(graph, num_updates, seed=seed + 1)
        per_method: dict[str, object] = {}
        for method in methods:
            index = build_method(method, graph)
            per_method[method] = measure_updates(index, graph, workload)
        out[name] = per_method
    return out


def fig2_insertion(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = DYNAMIC_METHODS,
    num_vertices: Optional[int] = None,
    num_updates: int = DEFAULT_UPDATES,
    seed: int = 0,
    sweep: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 2: average vertex-insertion time per method (milliseconds).

    Pass a precomputed *sweep* (from :func:`run_update_sweep`) to share
    one measurement run with Figure 4.
    """
    data = sweep if sweep is not None else run_update_sweep(
        datasets, methods, num_vertices=num_vertices,
        num_updates=num_updates, seed=seed,
    )
    result = ExperimentResult(
        name="fig2",
        title="Figure 2: average insertion time on dynamic graphs",
        headers=["dataset", *methods],
        note=f"{num_updates} deletions then re-insertions per dataset; avg per insert.",
        formatters={i + 1: format_millis for i in range(len(methods))},
    )
    for name, per_method in data.items():
        result.rows.append(
            [name, *(per_method[m].avg_insert_seconds for m in methods)]
        )
    return result


def fig4_deletion(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = DYNAMIC_METHODS,
    num_vertices: Optional[int] = None,
    num_updates: int = DEFAULT_UPDATES,
    seed: int = 0,
    sweep: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 4: average vertex-deletion time per method (milliseconds).

    Pass a precomputed *sweep* (from :func:`run_update_sweep`) to share
    one measurement run with Figure 2.
    """
    data = sweep if sweep is not None else run_update_sweep(
        datasets, methods, num_vertices=num_vertices,
        num_updates=num_updates, seed=seed,
    )
    result = ExperimentResult(
        name="fig4",
        title="Figure 4: average deletion time on dynamic graphs",
        headers=["dataset", *methods],
        note=f"{num_updates} deletions per dataset; avg per delete.",
        formatters={i + 1: format_millis for i in range(len(methods))},
    )
    for name, per_method in data.items():
        result.rows.append(
            [name, *(per_method[m].avg_delete_seconds for m in methods)]
        )
    return result


# ----------------------------------------------------------------------
# Figure 3 — query time on dynamic graphs
# ----------------------------------------------------------------------

def fig3_query_dynamic(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = (*DYNAMIC_METHODS, "BFS"),
    num_vertices: Optional[int] = None,
    num_queries: int = DEFAULT_QUERIES,
    num_updates: int = DEFAULT_UPDATES,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 3: total query time after a churn of updates (milliseconds).

    Each index first absorbs the delete/re-insert workload (so methods
    whose quality decays under updates — Dagger — show it, as in the
    paper), then answers the query batch.
    """
    result = ExperimentResult(
        name="fig3",
        title="Figure 3: total query time on dynamic graphs",
        headers=["dataset", *methods],
        note=(
            f"{num_queries} topo-aware queries after {num_updates} "
            "delete+reinsert operations; totals."
        ),
        formatters={i + 1: format_millis for i in range(len(methods))},
    )
    for name in _dataset_list(datasets):
        graph = ds.load(name, num_vertices=num_vertices, seed=seed)
        queries = generate_queries(graph, num_queries, seed=seed + 2)
        updates = generate_updates(graph, num_updates, seed=seed + 1)
        row: list = [name]
        for method in methods:
            index = build_method(method, graph)
            measure_updates(index, graph, updates)
            row.append(measure_queries(index, queries))
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Figures 5–7 — static line-up
# ----------------------------------------------------------------------

def run_static_sweep(
    datasets: Optional[Sequence[str]] = None,
    methods: Sequence[str] = STATIC_METHODS,
    *,
    num_vertices: Optional[int] = None,
    num_queries: int = DEFAULT_QUERIES,
    seed: int = 0,
) -> dict[str, dict[str, tuple[float, int, float]]]:
    """Shared runner behind Figures 5–7: per (dataset, method) a tuple of
    (build seconds, index bytes, query-batch seconds)."""
    out: dict[str, dict[str, tuple[float, int, float]]] = {}
    for name in _dataset_list(datasets):
        graph = ds.load(name, num_vertices=num_vertices, seed=seed)
        queries = generate_queries(graph, num_queries, seed=seed + 2)
        per_method: dict[str, tuple[float, int, float]] = {}
        for method in methods:
            built = measure_build(method, graph)
            query_s = measure_queries(built.index, queries)
            per_method[method] = (built.build_seconds, built.index_bytes, query_s)
        out[name] = per_method
    return out


def fig5_index_size(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = STATIC_METHODS,
    num_vertices: Optional[int] = None,
    seed: int = 0,
    sweep: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 5: index size in bytes, static line-up.

    Pass a precomputed *sweep* (from :func:`run_static_sweep`) to share
    one measurement run with Figures 6 and 7.
    """
    result = ExperimentResult(
        name="fig5",
        title="Figure 5: index sizes on static graphs",
        headers=["dataset", *methods],
        note="4 bytes per label for TOL methods; interval arrays for Dagger.",
        formatters={i + 1: format_bytes for i in range(len(methods))},
    )
    if sweep is not None:
        for name, per_method in sweep.items():
            result.rows.append([name, *(per_method[m][1] for m in methods)])
        return result
    for name in _dataset_list(datasets):
        graph = ds.load(name, num_vertices=num_vertices, seed=seed)
        row: list = [name]
        for method in methods:
            row.append(build_method(method, graph).size_bytes())
        result.rows.append(row)
    return result


def fig6_preprocessing(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = STATIC_METHODS,
    num_vertices: Optional[int] = None,
    seed: int = 0,
    sweep: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 6: preprocessing (index construction) time, static line-up.

    Pass a precomputed *sweep* (from :func:`run_static_sweep`) to share
    one measurement run with Figures 5 and 7.
    """
    result = ExperimentResult(
        name="fig6",
        title="Figure 6: preprocessing time on static graphs",
        headers=["dataset", *methods],
        formatters={i + 1: format_seconds for i in range(len(methods))},
    )
    if sweep is not None:
        for name, per_method in sweep.items():
            result.rows.append([name, *(per_method[m][0] for m in methods)])
        return result
    for name in _dataset_list(datasets):
        graph = ds.load(name, num_vertices=num_vertices, seed=seed)
        row: list = [name]
        for method in methods:
            row.append(measure_build(method, graph).build_seconds)
        result.rows.append(row)
    return result


def fig7_query_static(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = STATIC_METHODS,
    num_vertices: Optional[int] = None,
    num_queries: int = DEFAULT_QUERIES,
    seed: int = 0,
    sweep: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 7: total query time on static graphs (milliseconds).

    Pass a precomputed *sweep* (from :func:`run_static_sweep`) to share
    one measurement run with Figures 5 and 6.
    """
    data = sweep if sweep is not None else run_static_sweep(
        datasets, methods, num_vertices=num_vertices,
        num_queries=num_queries, seed=seed,
    )
    result = ExperimentResult(
        name="fig7",
        title="Figure 7: total query time on static graphs",
        headers=["dataset", *methods],
        note=f"{num_queries} topo-aware queries; totals.",
        formatters={i + 1: format_millis for i in range(len(methods))},
    )
    for name, per_method in data.items():
        result.rows.append([name, *(per_method[m][2] for m in methods)])
    return result


# ----------------------------------------------------------------------
# Table 4 — label reduction
# ----------------------------------------------------------------------

def table4_label_reduction(
    datasets: Optional[Sequence[str]] = None,
    *,
    methods: Sequence[str] = ("DL", "TF"),
    num_vertices: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 4: ΔL, ΔL/|L| and reduction time for DL- and TF-built indices.

    Builds each index under its native order, runs one Section-6 reduction
    sweep (delete + optimally re-insert every vertex) and reports the
    label-size savings exactly as Table 4 does.
    """
    order_of = {"DL": "degree", "TF": "topological", "HL": "hierarchical"}
    headers = ["dataset"]
    for m in methods:
        headers += [f"{m} ΔL", f"{m} ΔL/|L|", f"{m} time"]
    result = ExperimentResult(
        name="table4",
        title="Table 4: performance of label reduction",
        headers=headers,
        note="One reduction round (every vertex deleted and optimally re-inserted).",
    )
    fmt = {}
    for i, _m in enumerate(methods):
        fmt[1 + 3 * i] = format_bytes
        fmt[2 + 3 * i] = format_ratio
        fmt[3 + 3 * i] = format_seconds
    result.formatters = fmt

    for name in _dataset_list(datasets):
        graph = ds.load(name, num_vertices=num_vertices, seed=seed)
        row: list = [name]
        for method in methods:
            index = TOLIndex.build(graph, order=order_of[method])
            start = time.perf_counter()
            report = index.reduce_labels(max_rounds=1)
            elapsed = time.perf_counter() - start
            row += [report.reduction * 4, report.reduction_ratio, elapsed]
        result.rows.append(row)
    return result


#: Registry used by the examples' run-everything script.
ALL_EXPERIMENTS = {
    "table3": table3_datasets,
    "fig2": fig2_insertion,
    "fig3": fig3_query_dynamic,
    "fig4": fig4_deletion,
    "fig5": fig5_index_size,
    "fig6": fig6_preprocessing,
    "fig7": fig7_query_static,
    "table4": table4_label_reduction,
}
