#!/usr/bin/env python3
"""Dynamic social-network scenario: who can influence whom, as it changes.

This is the workload the paper's introduction motivates — "the social graph
of Twitter is constantly changing, with thousands of new users added per
day".  We simulate a follower graph (information flows along follows, so
"s can influence t" = reachability s -> t), then interleave:

* new accounts joining with a handful of follows,
* accounts being deleted,
* new follow edges (occasionally closing cycles — mutual-follow cliques),

while answering influence queries throughout, comparing the TOL index
(this paper's BU), Dagger (the prior dynamic index), and the index-free
bidirectional BFS.  Every answer is cross-checked between the methods.

Run:  python examples/social_network.py [--users 800] [--events 150]
"""

import argparse
import random
import time

from repro import DiGraph, ReachabilityIndex
from repro.baselines.dagger import DaggerIndex
from repro.baselines.search import BFSBaseline
from repro.graph.generators import power_law_dag


def build_follow_graph(num_users: int, seed: int) -> DiGraph:
    """A power-law follower DAG plus a sprinkle of mutual follows."""
    g = power_law_dag(num_users, 2.0, seed=seed)
    rng = random.Random(seed + 1)
    # Mutual follows close small cycles, as real social graphs have.
    edges = list(g.edges())
    for tail, head in rng.sample(edges, k=max(1, len(edges) // 50)):
        g.add_edge_if_absent(head, tail)
    return g


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=800)
    parser.add_argument("--events", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rng = random.Random(args.seed)
    graph = build_follow_graph(args.users, args.seed)
    print(f"follower graph: {graph.num_vertices} users, {graph.num_edges} follows")

    methods = {
        "TOL/BU": ReachabilityIndex(graph, order="butterfly-u"),
        "Dagger": DaggerIndex(graph),
        "BFS": BFSBaseline(graph),
    }
    update_time = {name: 0.0 for name in methods}
    query_time = {name: 0.0 for name in methods}
    queries_run = 0
    next_user = args.users

    def timed(name, fn, *fn_args, **fn_kwargs):
        start = time.perf_counter()
        out = fn(*fn_args, **fn_kwargs)
        update_time[name] += time.perf_counter() - start
        return out

    live = graph.copy()
    for event in range(args.events):
        roll = rng.random()
        if roll < 0.4:  # new account joins and follows some people
            follows = rng.sample(list(live.vertices()), k=min(3, live.num_vertices))
            user = next_user
            next_user += 1
            for name, idx in methods.items():
                timed(name, idx.insert_vertex, user, (), follows)
            live.add_vertex(user)
            for f in follows:
                live.add_edge(user, f)
        elif roll < 0.6 and live.num_vertices > 10:  # account deleted
            user = rng.choice(list(live.vertices()))
            for name, idx in methods.items():
                timed(name, idx.delete_vertex, user)
            live.remove_vertex(user)
        else:  # new follow edge (may create a mutual-follow cycle)
            pairs = None
            for _ in range(20):
                a = rng.choice(list(live.vertices()))
                b = rng.choice(list(live.vertices()))
                if a != b and not live.has_edge(a, b):
                    pairs = (a, b)
                    break
            if pairs is None:
                continue
            a, b = pairs
            for name, idx in methods.items():
                if hasattr(idx, "insert_edge"):
                    timed(name, idx.insert_edge, a, b)
                else:  # BFSBaseline keeps only the raw graph
                    idx._graph.add_edge(a, b)
            live.add_edge(a, b)

        # Influence queries after every event, answers cross-checked.
        users = list(live.vertices())
        for _ in range(5):
            s, t = rng.choice(users), rng.choice(users)
            answers = {}
            for name, idx in methods.items():
                start = time.perf_counter()
                answers[name] = idx.query(s, t)
                query_time[name] += time.perf_counter() - start
            queries_run += 1
            assert len(set(answers.values())) == 1, (s, t, answers)

    print(f"\nprocessed {args.events} graph events, {queries_run} queries each;"
          " all methods agreed on every answer.\n")
    print(f"{'method':8s}  {'total update':>14s}  {'total query':>14s}  {'per query':>10s}")
    for name in methods:
        per_q = query_time[name] / queries_run * 1e6
        print(
            f"{name:8s}  {update_time[name] * 1e3:12.1f}ms  "
            f"{query_time[name] * 1e3:12.1f}ms  {per_q:8.1f}us"
        )
    tol_q = query_time["TOL/BU"]
    print(
        f"\nTOL answers queries {query_time['BFS'] / tol_q:.0f}x faster than BFS "
        f"and {query_time['Dagger'] / tol_q:.0f}x faster than Dagger on this run."
    )


if __name__ == "__main__":
    main()
