#!/usr/bin/env python3
"""Operational workflow: persist an index, capture a trace, replay it.

The production shape of the paper's system: build the index once, ship it
to query servers, and keep it in sync by replaying the mutation stream.
This example walks that loop end to end:

1. generate a GovWild-style graph and build a BU index,
2. save it to disk (`.tolx` binary format) and load it back,
3. synthesize a mixed mutation/query trace and persist it as an op log,
4. replay the trace against the restored TOL index and against Dagger,
   cross-checking every query answer,
5. print per-op-class timing and label statistics before/after the churn.

Run:  python examples/trace_replay.py [--vertices 600] [--ops 300]
"""

import argparse
import tempfile
from pathlib import Path

from repro import ReachabilityIndex, load_dataset, labeling_stats
from repro.baselines.dagger import DaggerIndex
from repro.bench.trace import generate_trace, read_trace, replay_trace, write_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=600)
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="tol-trace-"))
    graph = load_dataset("GovWild", num_vertices=args.vertices, seed=args.seed)
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}")

    # 1-2. Build and round-trip the index through disk.  ReachabilityIndex
    # wraps a TOLIndex over the SCC condensation; we persist the TOL part.
    index = ReachabilityIndex(graph, order="butterfly-u")
    from repro import save_index, load_index

    index_path = workdir / "govwild.tolx"
    save_index(index.tol, index_path)
    restored_tol = load_index(index_path)
    print(
        f"index round-tripped through {index_path} "
        f"({index_path.stat().st_size} bytes on disk)"
    )
    assert restored_tol.size() == index.tol.size()
    print("before churn:", labeling_stats(index.tol.labeling).render())

    # 3. Capture a mutation/query stream as a replayable op log.
    trace = generate_trace(graph, args.ops, seed=args.seed, query_fraction=0.6)
    trace_path = workdir / "mutations.trace"
    write_trace(trace, trace_path)
    print(f"\ntrace: {trace.counts()} -> {trace_path}")

    # 4. Replay against both dynamic indices; answers must agree.
    trace = read_trace(trace_path)
    tol_report = replay_trace(ReachabilityIndex(graph, order="butterfly-u"), trace)
    dagger_report = replay_trace(DaggerIndex(graph), trace)
    assert tol_report.answers == dagger_report.answers
    print(f"replayed {tol_report.operations} ops on both indices; "
          f"{len(tol_report.answers)} query answers all agree")

    print(f"\n{'op':7s} {'TOL/BU':>10s} {'Dagger':>10s}")
    for kind in ("addv", "delv", "adde", "dele", "query"):
        print(
            f"{kind:7s} {tol_report.seconds[kind] * 1e3:8.1f}ms "
            f"{dagger_report.seconds[kind] * 1e3:8.1f}ms"
        )
    print(
        f"{'total':7s} {tol_report.total_seconds * 1e3:8.1f}ms "
        f"{dagger_report.total_seconds * 1e3:8.1f}ms"
    )

    # 5. Post-churn index health.
    churned = ReachabilityIndex(graph, order="butterfly-u")
    replay_trace(churned, trace)
    print("\nafter churn: ", labeling_stats(churned.tol.labeling).render())


if __name__ == "__main__":
    main()
