#!/usr/bin/env python3
"""Static citation-graph analysis: choosing a reachability index.

A citation graph is the classic static reachability workload ("does paper
X transitively cite paper Y?").  This example builds every static method
from the paper's line-up — BU, BL, HL, DL, TF (all TOL instantiations
under different level orders), Dagger and GRAIL — over a citeseerx-style
power-law DAG and reports the three axes the paper's Figures 5–7 compare:
index size, construction time, and batch query time.  It then demonstrates
Section 6's label reduction rescuing the weakest order.

Run:  python examples/citation_analysis.py [--papers 1500]
"""

import argparse
import time

from repro import TOLIndex, load_dataset
from repro.baselines.grail import GrailIndex
from repro.bench.harness import build_method
from repro.bench.tables import format_bytes, format_millis, format_seconds
from repro.bench.workloads import generate_queries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--papers", type=int, default=1500)
    parser.add_argument("--queries", type=int, default=3000)
    args = parser.parse_args()

    graph = load_dataset("citeseerx", num_vertices=args.papers)
    print(
        f"citation graph (citeseerx stand-in): {graph.num_vertices} papers, "
        f"{graph.num_edges} citations"
    )
    queries = generate_queries(graph, args.queries, seed=1)

    methods = ["BU", "BL", "HL", "DL", "TF", "Dagger"]
    print(f"\n{'method':8s} {'build':>10s} {'index size':>12s} "
          f"{'{} queries'.format(args.queries):>14s}")
    rows = {}
    for name in methods:
        start = time.perf_counter()
        index = build_method(name, graph)
        build_s = time.perf_counter() - start

        start = time.perf_counter()
        for s, t in queries:
            index.query(s, t)
        query_s = time.perf_counter() - start
        rows[name] = (build_s, index.size_bytes(), query_s)
        print(
            f"{name:8s} {format_seconds(build_s):>10s} "
            f"{format_bytes(index.size_bytes()):>12s} {format_millis(query_s):>14s}"
        )

    # GRAIL, the pruned-DFS family's representative, for completeness.
    start = time.perf_counter()
    grail = GrailIndex(graph)
    build_s = time.perf_counter() - start
    start = time.perf_counter()
    for s, t in queries:
        grail.query(s, t)
    query_s = time.perf_counter() - start
    print(
        f"{'GRAIL':8s} {format_seconds(build_s):>10s} "
        f"{format_bytes(grail.size_bytes()):>12s} {format_millis(query_s):>14s}"
    )

    print(
        f"\nBU stores {rows['TF'][1] / rows['BU'][1]:.1f}x fewer label bytes "
        f"than TF and {rows['DL'][1] / rows['BU'][1]:.1f}x fewer than DL on "
        "this graph (query times at this scale are sub-millisecond noise; "
        "see benchmarks/ for the figure-scale comparison)."
    )

    print("\n--- Section 6: label reduction on the TF-ordered index ---")
    tf_index = TOLIndex.build(graph, order="topological")
    before = tf_index.size_bytes()
    start = time.perf_counter()
    report = tf_index.reduce_labels()
    elapsed = time.perf_counter() - start
    print(
        f"TF index: {format_bytes(before)} -> {format_bytes(tf_index.size_bytes())} "
        f"({report.reduction_ratio:.1%} saved) in {format_seconds(elapsed)}; "
        f"BU built directly: {format_bytes(rows['BU'][1])}"
    )


if __name__ == "__main__":
    main()
