#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's Section 8.

Runs the eight experiment drivers (Table 3, Figures 2–7, Table 4) on the
scaled-down dataset stand-ins and prints each paper-style table.  This is
the same code path the ``benchmarks/`` suite uses; see EXPERIMENTS.md for
the paper-vs-measured comparison and DESIGN.md §5 for the substitutions.

Run:  python examples/reproduce_paper.py                  # quick profile
      python examples/reproduce_paper.py --profile full   # registry defaults
      python examples/reproduce_paper.py --only fig7 table4
"""

import argparse
import time

from repro.bench.experiments import (
    fig2_insertion,
    fig3_query_dynamic,
    fig4_deletion,
    fig5_index_size,
    fig6_preprocessing,
    fig7_query_static,
    run_static_sweep,
    run_update_sweep,
    table3_datasets,
    table4_label_reduction,
)

PROFILES = {
    # (update |V|, static |V|, reduction |V|, queries, updates)
    "quick": (400, 600, 250, 500, 15),
    "full": (None, None, 600, 2000, 40),  # None = registry defaults
}

REDUCTION_DATASETS = None  # filled in main() to skip RG20/RG40 like the paper


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of: table3 fig2 fig3 fig4 fig5 fig6 fig7 table4",
    )
    args = parser.parse_args()
    upd_v, sta_v, red_v, n_queries, n_updates = PROFILES[args.profile]

    from repro.datasets import DATASET_NAMES

    reduction_datasets = [d for d in DATASET_NAMES if d not in ("RG20", "RG40")]

    wanted = set(args.only) if args.only else {
        "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table4",
    }

    def show(result, started):
        print()
        print(result.render())
        print(f"[{result.name}: {time.perf_counter() - started:.1f}s]")

    if "table3" in wanted:
        t0 = time.perf_counter()
        show(table3_datasets(num_vertices=sta_v), t0)

    if wanted & {"fig2", "fig4"}:
        t0 = time.perf_counter()
        sweep = run_update_sweep(num_vertices=upd_v, num_updates=n_updates)
        if "fig2" in wanted:
            show(fig2_insertion(sweep=sweep, num_updates=n_updates), t0)
        if "fig4" in wanted:
            show(fig4_deletion(sweep=sweep, num_updates=n_updates), t0)

    if "fig3" in wanted:
        t0 = time.perf_counter()
        show(
            fig3_query_dynamic(
                num_vertices=upd_v, num_queries=n_queries, num_updates=n_updates
            ),
            t0,
        )

    if wanted & {"fig5", "fig6", "fig7"}:
        t0 = time.perf_counter()
        sweep = run_static_sweep(num_vertices=sta_v, num_queries=n_queries)
        if "fig5" in wanted:
            show(fig5_index_size(sweep=sweep), t0)
        if "fig6" in wanted:
            show(fig6_preprocessing(sweep=sweep), t0)
        if "fig7" in wanted:
            show(fig7_query_static(sweep=sweep, num_queries=n_queries), t0)

    if "table4" in wanted:
        t0 = time.perf_counter()
        show(
            table4_label_reduction(
                datasets=reduction_datasets, num_vertices=red_v
            ),
            t0,
        )


if __name__ == "__main__":
    main()
