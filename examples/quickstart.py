#!/usr/bin/env python3
"""Quickstart: build a TOL reachability index, query it, update it.

Walks through the library's public API on the paper's own running example
(the Figure 1 DAG) and then on a cyclic graph, showing:

* building a :class:`repro.TOLIndex` (Butterfly construction, BU order),
* answering reachability queries and inspecting witnesses,
* dynamic vertex insertion and deletion (Section 5 of the paper),
* :class:`repro.ReachabilityIndex` for graphs with cycles,
* iterative label reduction (Section 6).

Run:  python examples/quickstart.py
"""

from repro import DiGraph, ReachabilityIndex, TOLIndex
from repro.graph.generators import figure1_dag


def tol_index_on_a_dag() -> None:
    print("=" * 64)
    print("1. TOLIndex on the paper's Figure 1 DAG")
    print("=" * 64)
    graph = figure1_dag()
    index = TOLIndex.build(graph, order="butterfly-u")
    print(f"built: {index}")

    for s, t in [("e", "c"), ("a", "f"), ("c", "e"), ("h", "c")]:
        verdict = index.query(s, t)
        witness = index.witness(s, t)
        print(f"  {s} -> {t}?  {str(verdict):5s}  witness={witness}")

    print("\nlabel sets (Lin / Lout):")
    for v in sorted("abcdefgh"):
        print(f"  {v}: {sorted(index.in_labels(v))} / {sorted(index.out_labels(v))}")


def dynamic_updates() -> None:
    print()
    print("=" * 64)
    print("2. Dynamic updates: insert and delete vertices")
    print("=" * 64)
    index = TOLIndex.build(figure1_dag(), order="butterfly-u")

    # A new vertex downstream of c: Algorithm 3 picks its optimal level.
    index.insert_vertex("z", in_neighbors=["c"])
    print(f"after inserting z below c: e -> z? {index.query('e', 'z')}")

    # Deleting the hub 'a' cuts e off from most of the graph.
    index.delete_vertex("a")
    print(f"after deleting a:          e -> c? {index.query('e', 'c')}")
    print(f"                           b -> c? {index.query('b', 'c')}")
    print(f"index now: {index}")


def cyclic_graphs() -> None:
    print()
    print("=" * 64)
    print("3. ReachabilityIndex on a cyclic graph")
    print("=" * 64)
    g = DiGraph(edges=[
        ("pay", "ship"), ("ship", "invoice"), ("invoice", "pay"),  # a cycle
        ("invoice", "archive"),
    ])
    index = ReachabilityIndex(g)
    print(f"built: {index}")
    print(f"  pay -> archive? {index.query('pay', 'archive')}")
    print(f"  archive -> pay? {index.query('archive', 'pay')}")

    # An update that merges SCCs is handled transparently.
    index.insert_edge("archive", "ship")
    print("after inserting archive -> ship (merges the cycle):")
    print(f"  archive -> pay? {index.query('archive', 'pay')}")
    print(f"  condensation now has {index.condensation.dag.num_vertices} component(s)")


def label_reduction() -> None:
    print()
    print("=" * 64)
    print("4. Label reduction (Section 6): shrink a weak order's index")
    print("=" * 64)
    from repro import load_dataset

    graph = load_dataset("citeseerx", num_vertices=400)
    index = TOLIndex.build(graph, order="topological")  # TF-Label's order
    before = index.size()
    report = index.reduce_labels()
    print(f"TF-ordered index on citeseerx stand-in ({graph.num_vertices} vertices):")
    print(f"  labels before: {before}")
    print(f"  labels after : {report.final_size}  "
          f"(saved {report.reduction_ratio:.1%}, {report.vertices_moved} vertices moved)")


if __name__ == "__main__":
    tol_index_on_a_dag()
    dynamic_updates()
    cyclic_graphs()
    label_reduction()
