"""Tests for vertex deletion (Algorithm 4), incl. the stale-witness guard."""

import random

import pytest

from repro.core.butterfly import butterfly_build
from repro.core.deletion import delete_vertex
from repro.core.order import LevelOrder
from repro.core.reference import reference_tol
from repro.core.validation import assert_queries_correct
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph

from ..conftest import make_random_dag


class TestBasics:
    def test_delete_isolated(self):
        g = DiGraph(vertices=[1, 2])
        lab = butterfly_build(g, LevelOrder([1, 2]))
        delete_vertex(g, lab, 2)
        assert 2 not in lab
        assert 2 not in g
        assert 2 not in lab.order

    def test_delete_unknown_rejected(self):
        g = DiGraph(vertices=[1])
        lab = butterfly_build(g, LevelOrder([1]))
        with pytest.raises(IndexStateError):
            delete_vertex(g, lab, 99)

    def test_delete_bridge_disconnects(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        lab = butterfly_build(g, LevelOrder([1, 2, 3]))
        assert lab.query(1, 3)
        delete_vertex(g, lab, 2)
        assert not lab.query(1, 3)

    def test_delete_keeps_alternate_paths(self):
        g = DiGraph(edges=[(1, 2), (2, 4), (1, 3), (3, 4)])
        lab = butterfly_build(g, LevelOrder([1, 2, 3, 4]))
        delete_vertex(g, lab, 2)
        assert lab.query(1, 4)

    def test_delete_everything(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (3, 2)])
        lab = butterfly_build(g, LevelOrder([2, 3, 1]))
        for v in [1, 2, 3]:
            delete_vertex(g, lab, v)
        assert lab.num_vertices == 0
        assert g.num_vertices == 0


@pytest.mark.parametrize("trial", range(60))
def test_deletion_matches_reference(trial):
    r = random.Random(trial)
    g = make_random_dag(trial, max_n=11)
    if g.num_vertices < 2:
        pytest.skip("too small")
    seq = list(g.vertices())
    r.shuffle(seq)
    lab = butterfly_build(g, LevelOrder(seq))
    v = r.choice(seq)
    delete_vertex(g, lab, v)
    ref = reference_tol(g, lab.order)
    assert lab.snapshot() == ref.snapshot()
    lab.check_invariants()
    assert_queries_correct(g, lab)


@pytest.mark.parametrize("trial", range(25))
def test_delete_all_one_by_one(trial):
    r = random.Random(500 + trial)
    g = make_random_dag(trial, max_n=8)
    seq = list(g.vertices())
    r.shuffle(seq)
    lab = butterfly_build(g, LevelOrder(seq))
    victims = list(g.vertices())
    r.shuffle(victims)
    for v in victims:
        delete_vertex(g, lab, v)
        ref = reference_tol(g, lab.order)
        assert lab.snapshot() == ref.snapshot(), v


class TestStaleWitnessGuard:
    """Regression for the soundness gap in the printed Algorithm 4.

    Construction: order ``x > w > u > others`` with
    ``w -> v -> x`` (so ``x ∈ Lout(w)`` *only* via the deleted vertex v),
    ``x -> u`` (so ``x ∈ Lin(u)``) and ``w -> m -> u`` (a surviving path
    that should make ``w ∈ Lin(u)`` after the deletion).  Rebuilding
    ``Lin(u)`` consults the stale ``Lout(w) ∋ x`` and — without the guard
    — wrongly concludes ``w`` is covered, leaving ``w -> u`` unanswerable.
    """

    def build(self):
        g = DiGraph(
            edges=[
                ("w", "v"), ("v", "x"),   # w -> x only through v
                ("x", "u"),               # x above w, reaches u
                ("w", "m"), ("m", "u"),   # surviving path w -> u
            ]
        )
        order = LevelOrder(["x", "w", "v", "m", "u"])
        lab = butterfly_build(g, order)
        # Preconditions of the scenario.
        assert "x" in lab.label_out["w"]
        assert "x" in lab.label_in["u"]
        return g, lab

    def test_scenario_preconditions_hold(self):
        self.build()

    def test_deletion_remains_sound(self):
        g, lab = self.build()
        delete_vertex(g, lab, "v")
        assert lab.query("w", "u"), "stale witness suppressed a needed label"
        ref = reference_tol(g, lab.order)
        assert lab.snapshot() == ref.snapshot()
