"""Tests for Butterfly construction (Algorithm 5)."""

import pytest
from hypothesis import given

from repro.core.butterfly import butterfly_build
from repro.core.order import LevelOrder
from repro.errors import GraphError
from repro.core.reference import reference_tol
from repro.core.validation import assert_queries_correct, assert_valid_tol
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_layered_dag

from ..conftest import dags_with_order


class TestBasics:
    def test_empty_graph(self):
        lab = butterfly_build(DiGraph(), LevelOrder())
        assert lab.size() == 0

    def test_single_vertex(self):
        lab = butterfly_build(DiGraph(vertices=[1]), LevelOrder([1]))
        assert lab.size() == 0
        assert lab.query(1, 1)

    def test_single_edge_low_source(self):
        # order: 2 above 1; edge 1 -> 2 means 2 ∈ ... Lout(1).
        lab = butterfly_build(DiGraph(edges=[(1, 2)]), LevelOrder([2, 1]))
        assert lab.label_out[1] == {2}
        assert lab.label_in[2] == set()

    def test_single_edge_high_source(self):
        lab = butterfly_build(DiGraph(edges=[(1, 2)]), LevelOrder([1, 2]))
        assert lab.label_in[2] == {1}
        assert lab.label_out[1] == set()

    def test_chain_under_top_down_order(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 4)])
        lab = butterfly_build(g, LevelOrder([1, 2, 3, 4]))
        # The Path Constraint only excludes a label u when some vertex
        # *above u* lies between: in a source-first chain nothing outranks
        # an ancestor, so every ancestor is a label — the quadratic worst
        # case that motivates better orders.
        assert lab.label_in[2] == {1}
        assert lab.label_in[3] == {1, 2}
        assert lab.label_in[4] == {1, 2, 3}

    def test_chain_under_middle_first_order(self):
        # Ranking the middle vertex highest halves the chain: labels stay
        # linear in total.
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 4)])
        lab = butterfly_build(g, LevelOrder([3, 1, 2, 4]))
        assert lab.size() < butterfly_build(
            g, LevelOrder([1, 2, 3, 4])
        ).size()

    def test_cycle_rejected(self):
        from repro.errors import NotADagError

        with pytest.raises(NotADagError):
            butterfly_build(DiGraph(edges=[(1, 2), (2, 1)]), LevelOrder([1, 2]))

    def test_order_mismatch_rejected(self):
        with pytest.raises(GraphError):
            butterfly_build(DiGraph(vertices=[1, 2]), LevelOrder([1]))
        with pytest.raises(GraphError):
            butterfly_build(DiGraph(vertices=[1]), LevelOrder([1, 99]))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown build engine"):
            butterfly_build(
                DiGraph(vertices=[1]), LevelOrder([1]), engine="simd"
            )


@given(dags_with_order())
def test_matches_reference(pair):
    graph, order = pair
    ref = reference_tol(graph, order)
    got = butterfly_build(graph, LevelOrder(list(order)))
    assert got.snapshot() == ref.snapshot()


@given(dags_with_order())
def test_prune_equivalence(pair):
    graph, order = pair
    pruned = butterfly_build(graph, LevelOrder(list(order)), prune=True)
    verbatim = butterfly_build(graph, LevelOrder(list(order)), prune=False)
    assert pruned.snapshot() == verbatim.snapshot()


@given(dags_with_order())
def test_queries_and_validity(pair):
    graph, order = pair
    lab = butterfly_build(graph, order)
    assert_valid_tol(graph, lab)
    assert_queries_correct(graph, lab)


def test_medium_layered_graph_smoke():
    g = random_layered_dag(300, 4.0, seed=3)
    from repro.core.orders import butterfly_upper_order

    lab = butterfly_build(g, butterfly_upper_order(g))
    lab.check_invariants()
    # Spot-check queries against the BFS ground truth.
    from repro.graph.traversal import bidirectional_reachable
    import random

    r = random.Random(0)
    vs = list(g.vertices())
    for _ in range(300):
        s, t = r.choice(vs), r.choice(vs)
        assert lab.query(s, t) == bidirectional_reachable(g, s, t)
