"""Tests for ReachabilityIndex: dynamic reachability on cyclic graphs."""

import random

import pytest

from repro.core.index import ReachabilityIndex
from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reachable


def assert_all_pairs(idx, graph):
    for s in graph.vertices():
        for t in graph.vertices():
            assert idx.query(s, t) == bidirectional_reachable(graph, s, t), (s, t)


class TestStatic:
    def test_dag_input(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        idx = ReachabilityIndex(g)
        assert idx.query(1, 3)
        assert not idx.query(3, 1)

    def test_cyclic_input(self):
        g = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        idx = ReachabilityIndex(g)
        assert idx.query("a", "d")
        assert idx.query("b", "a")  # within the SCC
        assert not idx.query("d", "a")

    def test_empty(self):
        idx = ReachabilityIndex()
        assert idx.num_vertices == 0

    def test_query_never_inserted_vertex(self):
        # Regression: unknown endpoints raise the KeyError-derived
        # graph-lookup error rather than an opaque internal failure.
        idx = ReachabilityIndex(DiGraph(edges=[(1, 2)]))
        with pytest.raises(VertexNotFoundError) as excinfo:
            idx.query(1, "ghost")
        assert excinfo.value.vertex == "ghost"
        with pytest.raises(KeyError):
            idx.query("ghost", 1)

    def test_counts_reflect_original_graph(self):
        g = DiGraph(edges=[(1, 2), (2, 1), (2, 3)])
        idx = ReachabilityIndex(g)
        assert idx.num_vertices == 3
        assert idx.num_edges == 3
        assert idx.condensation.dag.num_vertices == 2

    def test_membership(self):
        idx = ReachabilityIndex(DiGraph(vertices=[1]))
        assert 1 in idx and 2 not in idx

    def test_order_strategy_parameter(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        idx = ReachabilityIndex(g, order="degree")
        assert idx.query(1, 3)

    def test_repr(self):
        assert "ReachabilityIndex" in repr(ReachabilityIndex())


class TestUpdates:
    def test_edge_insert_merging_scc(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        idx = ReachabilityIndex(g)
        idx.insert_edge(3, 1)
        assert idx.query(3, 1) and idx.query(2, 1)
        assert idx.condensation.dag.num_vertices == 1

    def test_edge_delete_splitting_scc(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1)])
        idx = ReachabilityIndex(g)
        idx.delete_edge(3, 1)
        assert idx.query(1, 3)
        assert not idx.query(3, 1)

    def test_vertex_ops(self):
        g = DiGraph(edges=[("a", "b")])
        idx = ReachabilityIndex(g)
        idx.insert_vertex("c", in_neighbors=["b"], out_neighbors=["a"])
        assert idx.query("b", "a")  # cycle a -> b -> c -> a formed
        idx.delete_vertex("c")
        assert not idx.query("b", "a")

    def test_reduce_labels_via_facade(self):
        g = DiGraph(edges=[(i, i + 1) for i in range(20)])
        idx = ReachabilityIndex(g, order="topological")
        before = idx.size()
        idx.reduce_labels()
        assert idx.size() <= before
        assert idx.query(0, 20)

    @pytest.mark.parametrize("trial", range(12))
    def test_random_cyclic_update_storm(self, trial):
        r = random.Random(trial)
        n = r.randint(2, 8)
        g = DiGraph(vertices=range(n))
        for i in range(n):
            for j in range(n):
                if i != j and r.random() < 0.2:
                    g.add_edge_if_absent(i, j)
        idx = ReachabilityIndex(g)
        live = g.copy()
        nxt = n
        for _ in range(12):
            roll = r.random()
            if roll < 0.25 and live.num_vertices > 1:
                v = r.choice(list(live.vertices()))
                live.remove_vertex(v)
                idx.delete_vertex(v)
            elif roll < 0.5:
                pairs = [
                    (a, b)
                    for a in live.vertices()
                    for b in live.vertices()
                    if a != b and not live.has_edge(a, b)
                ]
                if pairs:
                    a, b = r.choice(pairs)
                    live.add_edge(a, b)
                    idx.insert_edge(a, b)
            elif roll < 0.75:
                edges = list(live.edges())
                if edges:
                    a, b = r.choice(edges)
                    live.remove_edge(a, b)
                    idx.delete_edge(a, b)
            else:
                verts = list(live.vertices())
                ins = [x for x in verts if r.random() < 0.3]
                outs = [x for x in verts if r.random() < 0.3]
                live.add_vertex_if_absent(nxt)
                for u in ins:
                    live.add_edge(u, nxt)
                for w in outs:
                    live.add_edge(nxt, w)
                idx.insert_vertex(nxt, ins, outs)
                nxt += 1
            assert_all_pairs(idx, live)
