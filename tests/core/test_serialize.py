"""Tests for index persistence (binary + JSON round trips)."""

import json

import pytest
from hypothesis import given

from repro.core.index import TOLIndex
from repro.core.serialize import (
    index_from_dict,
    index_to_dict,
    load_checkpoint,
    load_index,
    save_checkpoint,
    save_index,
)
from repro.core.validation import find_violations
from repro.errors import IndexStateError, SerializationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag

from ..conftest import small_dags


@pytest.fixture
def index():
    return TOLIndex.build(figure1_dag(), order="butterfly-u")


class TestDictRoundTrip:
    def test_basic(self, index):
        restored = index_from_dict(index_to_dict(index))
        assert restored.labeling.snapshot() == index.labeling.snapshot()
        assert list(restored.order) == list(index.order)
        assert restored.graph_copy() == index.graph_copy()

    def test_dict_is_json_compatible(self, index):
        json.dumps(index_to_dict(index))

    def test_bad_format_rejected(self):
        with pytest.raises(IndexStateError):
            index_from_dict({"format": "something-else"})

    def test_bad_version_rejected(self, index):
        payload = index_to_dict(index)
        payload["version"] = 999
        with pytest.raises(IndexStateError):
            index_from_dict(payload)

    def test_duplicate_vertices_rejected(self, index):
        payload = index_to_dict(index)
        payload["vertices"][1] = payload["vertices"][0]
        with pytest.raises(IndexStateError):
            index_from_dict(payload)

    def test_unserializable_vertices_rejected(self):
        idx = TOLIndex.build(DiGraph(vertices=[object()]))
        with pytest.raises(IndexStateError):
            index_to_dict(idx)

    def test_tuple_vertices_round_trip(self):
        g = DiGraph(edges=[((1, "a"), (2, "b"))])
        idx = TOLIndex.build(g)
        restored = index_from_dict(index_to_dict(idx))
        assert restored.query((1, "a"), (2, "b"))


class TestFileRoundTrip:
    @pytest.mark.parametrize("name", ["idx.tolx", "idx.json"])
    def test_round_trip(self, index, tmp_path, name):
        path = tmp_path / name
        save_index(index, path)
        restored = load_index(path)
        assert restored.labeling.snapshot() == index.labeling.snapshot()
        assert restored.query("e", "c") and not restored.query("c", "e")

    def test_binary_is_compact(self, tmp_path):
        g = random_dag(200, 800, seed=1)
        idx = TOLIndex.build(g)
        bin_path = tmp_path / "i.tolx"
        json_path = tmp_path / "i.json"
        save_index(idx, bin_path)
        save_index(idx, json_path)
        assert bin_path.stat().st_size < json_path.stat().st_size / 3

    def test_forced_format(self, index, tmp_path):
        path = tmp_path / "weird.dat"
        save_index(index, path, format="json")
        assert path.read_bytes()[:1] == b"{"
        assert load_index(path).query("e", "c")

    def test_unknown_format_rejected(self, index, tmp_path):
        with pytest.raises(IndexStateError):
            save_index(index, tmp_path / "x", format="xml")

    def test_corrupt_binary_detected(self, index, tmp_path):
        path = tmp_path / "i.tolx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(Exception):  # zlib error or checksum failure
            load_index(path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\x00\x01\x02 not an index")
        with pytest.raises(IndexStateError):
            load_index(path)

    def test_restored_index_supports_updates(self, index, tmp_path):
        path = tmp_path / "i.tolx"
        save_index(index, path)
        restored = load_index(path)
        restored.insert_vertex("z", in_neighbors=["c"])
        assert restored.query("e", "z")
        restored.delete_vertex("a")
        assert not restored.query("e", "c")
        assert find_violations(restored.graph_copy(), restored.labeling) == []


class TestMalformedInput:
    """Every decode failure must surface as SerializationError.

    A durable-recovery caller (``CheckpointStore.load_latest``) walks
    past corrupt checkpoints by catching exactly this type, so a bare
    ``struct.error`` or ``zlib.error`` escaping the parser would abort
    recovery instead of falling back to an older snapshot.
    """

    def test_truncated_binary_index(self, index, tmp_path):
        path = tmp_path / "i.tolx"
        save_index(index, path)
        blob = path.read_bytes()
        for cut in (3, 10, len(blob) // 2, len(blob) - 1):
            path.write_bytes(blob[:cut])
            with pytest.raises(SerializationError):
                load_index(path)

    def test_corrupt_binary_index(self, index, tmp_path):
        path = tmp_path / "i.tolx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError):
            load_index(path)

    def test_truncated_checkpoint(self, tmp_path):
        path = tmp_path / "c.tolc"
        save_checkpoint(path, figure1_dag(), {"wal_seq": 3})
        blob = path.read_bytes()
        for cut in (0, 5, len(blob) - 2):
            path.write_bytes(blob[:cut])
            with pytest.raises(SerializationError):
                load_checkpoint(path)

    def test_corrupt_checkpoint_payload(self, tmp_path):
        path = tmp_path / "c.tolc"
        save_checkpoint(path, figure1_dag(), {})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError):
            load_checkpoint(path)

    def test_serialization_error_is_an_index_state_error(self):
        # Pre-existing broad handlers must keep catching the new type.
        assert issubclass(SerializationError, IndexStateError)


class TestCheckpointRoundTrip:
    def test_graph_and_meta_preserved(self, tmp_path):
        graph = random_dag(30, 70, seed=8)
        meta = {"wal_seq": 41, "epoch": 7}
        path = tmp_path / "c.tolc"
        save_checkpoint(path, graph, meta)
        back, meta_back = load_checkpoint(path)
        assert back == graph
        assert meta_back == meta

    def test_tuple_vertices(self, tmp_path):
        graph = DiGraph(edges=[((1, "a"), (2, "b"))], vertices=[("x", 0)])
        path = tmp_path / "c.tolc"
        save_checkpoint(path, graph, {})
        back, _ = load_checkpoint(path)
        assert back == graph


class TestInternerPreservation:
    """Round-trips must preserve vertex-id assignment (satellite 2).

    Label buffers store interner ids; if a reload renumbered vertices,
    the restored index would silently answer queries for the wrong
    vertices even though every buffer decoded cleanly.
    """

    def test_ids_stable_across_round_trip(self, tmp_path):
        idx = TOLIndex.build(random_dag(40, 90, seed=12))
        before = dict(idx.labeling.interner.ids)
        path = tmp_path / "i.tolx"
        save_index(idx, path)
        restored = load_index(path)
        assert dict(restored.labeling.interner.ids) == before

    def test_ids_stable_after_deletions(self, tmp_path):
        # Deleting vertices leaves holes in the id space; the free list
        # must survive so post-reload inserts can't collide.
        idx = TOLIndex.build(figure1_dag())
        idx.delete_vertex("b")
        before = dict(idx.labeling.interner.ids)
        path = tmp_path / "i.tolx"
        save_index(idx, path)
        restored = load_index(path)
        assert dict(restored.labeling.interner.ids) == before
        restored.insert_vertex("fresh", in_neighbors=["a"])
        ids = restored.labeling.interner.ids
        assert len(set(ids.values())) == len(ids)  # no id collision
        assert find_violations(restored.graph_copy(), restored.labeling) == []


@given(small_dags())
def test_round_trip_property(graph):
    idx = TOLIndex.build(graph, order="degree")
    restored = index_from_dict(index_to_dict(idx))
    assert restored.labeling.snapshot() == idx.labeling.snapshot()
    assert list(restored.order) == list(idx.order)
