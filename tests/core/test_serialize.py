"""Tests for index persistence (binary + JSON round trips)."""

import json

import pytest
from hypothesis import given

from repro.core.index import TOLIndex
from repro.core.serialize import (
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.core.validation import find_violations
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag

from ..conftest import small_dags


@pytest.fixture
def index():
    return TOLIndex.build(figure1_dag(), order="butterfly-u")


class TestDictRoundTrip:
    def test_basic(self, index):
        restored = index_from_dict(index_to_dict(index))
        assert restored.labeling.snapshot() == index.labeling.snapshot()
        assert list(restored.order) == list(index.order)
        assert restored.graph_copy() == index.graph_copy()

    def test_dict_is_json_compatible(self, index):
        json.dumps(index_to_dict(index))

    def test_bad_format_rejected(self):
        with pytest.raises(IndexStateError):
            index_from_dict({"format": "something-else"})

    def test_bad_version_rejected(self, index):
        payload = index_to_dict(index)
        payload["version"] = 999
        with pytest.raises(IndexStateError):
            index_from_dict(payload)

    def test_duplicate_vertices_rejected(self, index):
        payload = index_to_dict(index)
        payload["vertices"][1] = payload["vertices"][0]
        with pytest.raises(IndexStateError):
            index_from_dict(payload)

    def test_unserializable_vertices_rejected(self):
        idx = TOLIndex.build(DiGraph(vertices=[object()]))
        with pytest.raises(IndexStateError):
            index_to_dict(idx)

    def test_tuple_vertices_round_trip(self):
        g = DiGraph(edges=[((1, "a"), (2, "b"))])
        idx = TOLIndex.build(g)
        restored = index_from_dict(index_to_dict(idx))
        assert restored.query((1, "a"), (2, "b"))


class TestFileRoundTrip:
    @pytest.mark.parametrize("name", ["idx.tolx", "idx.json"])
    def test_round_trip(self, index, tmp_path, name):
        path = tmp_path / name
        save_index(index, path)
        restored = load_index(path)
        assert restored.labeling.snapshot() == index.labeling.snapshot()
        assert restored.query("e", "c") and not restored.query("c", "e")

    def test_binary_is_compact(self, tmp_path):
        g = random_dag(200, 800, seed=1)
        idx = TOLIndex.build(g)
        bin_path = tmp_path / "i.tolx"
        json_path = tmp_path / "i.json"
        save_index(idx, bin_path)
        save_index(idx, json_path)
        assert bin_path.stat().st_size < json_path.stat().st_size / 3

    def test_forced_format(self, index, tmp_path):
        path = tmp_path / "weird.dat"
        save_index(index, path, format="json")
        assert path.read_bytes()[:1] == b"{"
        assert load_index(path).query("e", "c")

    def test_unknown_format_rejected(self, index, tmp_path):
        with pytest.raises(IndexStateError):
            save_index(index, tmp_path / "x", format="xml")

    def test_corrupt_binary_detected(self, index, tmp_path):
        path = tmp_path / "i.tolx"
        save_index(index, path)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(Exception):  # zlib error or checksum failure
            load_index(path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\x00\x01\x02 not an index")
        with pytest.raises(IndexStateError):
            load_index(path)

    def test_restored_index_supports_updates(self, index, tmp_path):
        path = tmp_path / "i.tolx"
        save_index(index, path)
        restored = load_index(path)
        restored.insert_vertex("z", in_neighbors=["c"])
        assert restored.query("e", "z")
        restored.delete_vertex("a")
        assert not restored.query("e", "c")
        assert find_violations(restored.graph_copy(), restored.labeling) == []


@given(small_dags())
def test_round_trip_property(graph):
    idx = TOLIndex.build(graph, order="degree")
    restored = index_from_dict(index_to_dict(idx))
    assert restored.labeling.snapshot() == idx.labeling.snapshot()
    assert list(restored.order) == list(idx.order)
