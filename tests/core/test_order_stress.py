"""Stress tests for the order-maintenance structure under index workloads.

The level order is the one data structure every algorithm leans on; these
tests drive it with the exact access patterns the TOL machinery produces
(bursts of insert-above at a hot position, interleaved removals) at sizes
above the unit tests', and cross-check against a list model throughout.
"""

import random

import pytest

from repro.core.order import LevelOrder


class TestHotspotPatterns:
    def test_repeated_insert_above_same_anchor(self):
        """Algorithm 3 frequently lands new vertices just above one hub."""
        order = LevelOrder(["hub", "tail"])
        for i in range(3000):
            order.insert_before(i, "hub")
        order.check_invariants()
        seq = list(order)
        assert seq[-2:] == ["hub", "tail"]
        assert len(seq) == 3002

    def test_repeated_insert_below_same_anchor(self):
        order = LevelOrder(["head", "hub"])
        for i in range(3000):
            order.insert_after(i, "hub")
        order.check_invariants()
        assert list(order)[:2] == ["head", "hub"]

    def test_alternating_insert_remove_at_bottom(self):
        """The bottom-placement fast path of insertion."""
        order = LevelOrder(range(50))
        for round_ in range(500):
            order.insert_last(("tmp", round_))
            assert order.last() == ("tmp", round_)
            order.remove(("tmp", round_))
        assert list(order) == list(range(50))

    def test_churn_keeps_comparisons_transitive(self):
        rng = random.Random(5)
        order = LevelOrder(range(60))
        alive = list(range(60))
        nxt = 60
        for _ in range(800):
            if rng.random() < 0.5 and len(alive) > 2:
                victim = alive.pop(rng.randrange(len(alive)))
                order.remove(victim)
            else:
                anchor = alive[rng.randrange(len(alive))]
                order.insert_before(nxt, anchor)
                alive.insert(alive.index(anchor), nxt)
                nxt += 1
        order.check_invariants()
        assert list(order) == alive
        # Spot-check transitivity: a < b and b < c implies a < c.
        for _ in range(200):
            a, b, c = rng.sample(alive, 3)
            pairs = sorted([a, b, c], key=order.key)
            assert order.higher(pairs[0], pairs[2])


class TestRelabelBehaviour:
    def test_relabel_fires_under_pressure_and_preserves_order(self):
        order = LevelOrder(["a", "b"])
        before = order.relabel_count
        # Squeezing into the same gap halves it each time: ~62 inserts
        # exhaust the 2^62 span and force relabels.
        for i in range(200):
            order.insert_after(i, "a")
        assert order.relabel_count > before
        seq = list(order)
        assert seq[0] == "a" and seq[-1] == "b"
        # Newest insertions sit closest to the anchor.
        assert seq[1] == 199

    def test_keys_refresh_after_relabel(self):
        order = LevelOrder(["a", "b"])
        for i in range(200):
            order.insert_after(i, "a")
        keys = [order.key(v) for v in order]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)


class TestScaleSanity:
    @pytest.mark.parametrize("n", [1000, 5000])
    def test_bulk_build_and_teardown(self, n):
        order = LevelOrder(range(n))
        assert order.rank(n - 1) == n
        for v in range(0, n, 2):
            order.remove(v)
        order.check_invariants()
        assert len(order) == n // 2
        assert order.first() == 1
