"""Unit tests for the vertex interner (`repro.core.intern`)."""

from __future__ import annotations

import pytest

from repro.core import TOLIndex, VertexInterner
from repro.core.intern import _EMPTY
from repro.errors import UnknownVertexError
from repro.graph.digraph import DiGraph


class TestAllocation:
    def test_dense_sequential_ids(self):
        interner = VertexInterner()
        assert [interner.intern(v) for v in "abc"] == [0, 1, 2]
        assert interner.capacity == 3

    def test_intern_is_idempotent(self):
        interner = VertexInterner()
        assert interner.intern("a") == interner.intern("a") == 0
        assert len(interner) == 1

    def test_release_then_reuse_lifo(self):
        interner = VertexInterner()
        for v in "abcd":
            interner.intern(v)
        assert interner.release("b") == 1
        assert interner.release("d") == 3
        # LIFO: the most recently freed id comes back first.
        assert interner.intern("e") == 3
        assert interner.intern("f") == 1
        # The id space never grew past the original four.
        assert interner.capacity == 4
        assert interner.free_count == 0
        interner.check_invariants()

    def test_release_unknown_raises(self):
        interner = VertexInterner()
        with pytest.raises(UnknownVertexError):
            interner.release("ghost")

    def test_churn_keeps_id_space_bounded(self):
        interner = VertexInterner()
        interner.intern("anchor")
        for round_ in range(50):
            i = interner.intern(("temp", round_))
            assert i == 1, "balanced churn must recycle the same id"
            interner.release(("temp", round_))
        assert interner.capacity == 2
        interner.check_invariants()


class TestLookup:
    def test_bijection_round_trip(self):
        interner = VertexInterner()
        vertices = ["x", 7, ("tuple", 1), None, frozenset({3})]
        ids = [interner.intern(v) for v in vertices]
        for v, i in zip(vertices, ids):
            assert interner.id_of(v) == i
            assert interner.vertex_of(i) == v
            assert v in interner
        interner.check_invariants()

    def test_none_is_a_valid_vertex(self):
        interner = VertexInterner()
        i = interner.intern(None)
        assert interner.get(None) == i
        assert interner.vertex_of(i) is None
        interner.release(None)
        assert interner.get(None) is None
        assert interner.table[i] is _EMPTY

    def test_lookup_of_freed_id_raises(self):
        interner = VertexInterner()
        i = interner.intern("a")
        interner.release("a")
        with pytest.raises(UnknownVertexError):
            interner.vertex_of(i)
        with pytest.raises(UnknownVertexError):
            interner.id_of("a")
        with pytest.raises(UnknownVertexError):
            interner.vertex_of(99)

    def test_iteration_and_items(self):
        interner = VertexInterner()
        for v in "abc":
            interner.intern(v)
        assert list(interner) == ["a", "b", "c"]
        assert dict(interner.items()) == {"a": 0, "b": 1, "c": 2}


class TestStability:
    def test_ids_stable_across_unrelated_churn(self):
        interner = VertexInterner()
        keep = interner.intern("keep")
        for round_ in range(20):
            interner.intern(("churn", round_))
        for round_ in range(0, 20, 2):
            interner.release(("churn", round_))
        assert interner.id_of("keep") == keep
        interner.check_invariants()


class TestThroughIndex:
    """Id reuse observed through the public TOLIndex mutation API."""

    def test_delete_vertex_recycles_its_id(self, fig1):
        index = TOLIndex.build(fig1)
        interner = index.labeling.interner
        capacity_before = interner.capacity
        freed = interner.id_of("g")
        index.delete_vertex("g")
        assert "g" not in interner
        assert interner.free_count == 1
        index.insert_vertex("new", in_neighbors=["a"], out_neighbors=["h"])
        assert interner.id_of("new") == freed
        assert interner.capacity == capacity_before
        interner.check_invariants()
        index.labeling.check_invariants()

    def test_survivor_ids_stable_across_delete(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        index = TOLIndex.build(graph)
        interner = index.labeling.interner
        before = {v: interner.id_of(v) for v in "ac"}
        index.delete_vertex("b")
        for v, i in before.items():
            assert interner.id_of(v) == i
        assert index.query("a", "c")
