"""Tests for TOLIndex edge insertion/deletion (level-preserving reindex)."""

import random

import pytest

from repro.core.index import TOLIndex
from repro.core.reference import reference_tol
from repro.errors import IndexStateError, NotADagError
from repro.graph.digraph import DiGraph

from ..conftest import make_random_dag


class TestBasics:
    def test_insert_edge_connects(self):
        idx = TOLIndex.build(DiGraph(vertices=[1, 2, 3]))
        idx.insert_edge(1, 2)
        idx.insert_edge(2, 3)
        assert idx.query(1, 3)
        assert idx.num_edges == 2

    def test_delete_edge_disconnects(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2), (2, 3)]))
        idx.delete_edge(2, 3)
        assert not idx.query(1, 3)
        assert idx.query(1, 2)

    def test_duplicate_edge_rejected(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2)]))
        with pytest.raises(IndexStateError):
            idx.insert_edge(1, 2)

    def test_missing_edge_rejected(self):
        idx = TOLIndex.build(DiGraph(vertices=[1, 2]))
        with pytest.raises(IndexStateError):
            idx.delete_edge(1, 2)

    def test_missing_endpoint_rejected(self):
        idx = TOLIndex.build(DiGraph(vertices=[1]))
        with pytest.raises(IndexStateError):
            idx.insert_edge(1, 99)

    def test_cycle_rejected_without_damage(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2), (2, 3)]))
        with pytest.raises(NotADagError):
            idx.insert_edge(3, 1)
        assert idx.num_edges == 2
        assert idx.query(1, 3)

    def test_order_is_preserved(self):
        idx = TOLIndex.build(DiGraph(vertices=[1, 2, 3, 4]))
        before = list(idx.order)
        idx.insert_edge(1, 3)
        assert list(idx.order) == before


class TestReachSets:
    def test_descendants_ancestors(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2), (2, 3), (1, 4)]))
        assert idx.descendants(1) == {2, 3, 4}
        assert idx.ancestors(3) == {1, 2}
        assert idx.descendants(3) == set()

    def test_unknown_vertex(self):
        idx = TOLIndex.build(DiGraph(vertices=[1]))
        with pytest.raises(IndexStateError):
            idx.descendants(9)
        with pytest.raises(IndexStateError):
            idx.ancestors(9)


@pytest.mark.parametrize("trial", range(30))
def test_random_edge_churn_stays_reference_exact(trial):
    r = random.Random(9000 + trial)
    g = make_random_dag(trial, max_n=9)
    idx = TOLIndex.build(g, order="butterfly-u")
    live = g.copy()
    for _ in range(10):
        if r.random() < 0.5:
            pairs = [
                (a, b)
                for a in live.vertices()
                for b in live.vertices()
                if a != b and not live.has_edge(a, b)
            ]
            r.shuffle(pairs)
            for a, b in pairs:
                try:
                    idx.insert_edge(a, b)
                except NotADagError:
                    continue
                live.add_edge(a, b)
                break
        else:
            edges = list(live.edges())
            if not edges:
                continue
            a, b = r.choice(edges)
            live.remove_edge(a, b)
            idx.delete_edge(a, b)
        ref = reference_tol(live, idx.order)
        assert idx.labeling.snapshot() == ref.snapshot()
        assert idx.graph_copy() == live
