"""Tests for the validation oracle itself (it must catch broken indices)."""

import pytest

from repro.core.butterfly import butterfly_build
from repro.core.order import LevelOrder
from repro.core.validation import (
    TOLViolation,
    assert_queries_correct,
    assert_valid_tol,
    find_violations,
)
from repro.graph.digraph import DiGraph


@pytest.fixture
def g():
    return DiGraph(edges=[(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def lab(g):
    return butterfly_build(g, LevelOrder([1, 2, 3]))


class TestFindViolations:
    def test_clean_index(self, g, lab):
        assert find_violations(g, lab) == []

    def test_missing_label_detected(self, g, lab):
        lab.remove_in_label(2, 1)
        problems = find_violations(g, lab)
        assert any("missing label" in p for p in problems)

    def test_extra_label_detected(self, g, lab):
        lab.add_out_label(3, 2)  # 3 cannot reach 2
        problems = find_violations(g, lab)
        assert any("extra label" in p for p in problems)

    def test_assert_raises_with_details(self, g, lab):
        lab.remove_in_label(3, 2)
        with pytest.raises(TOLViolation, match="Lin"):
            assert_valid_tol(g, lab)

    def test_assert_passes_clean(self, g, lab):
        assert_valid_tol(g, lab)


class TestQueryOracle:
    def test_correct_index_passes(self, g, lab):
        assert_queries_correct(g, lab)

    def test_broken_query_detected(self, g, lab):
        lab.remove_in_label(3, 2)
        # Now query(2, 3) has no witness though 2 -> 3.
        with pytest.raises(TOLViolation, match="query"):
            assert_queries_correct(g, lab)
