"""Tests for the Definition-1 reference construction and reach maps."""

from hypothesis import given

from repro.core.order import LevelOrder
from repro.core.reference import ancestors_map, descendants_map, reference_tol
from repro.graph.digraph import DiGraph
from repro.graph.traversal import backward_reachable, forward_reachable

from ..conftest import dags_with_order, small_dags


class TestReachMaps:
    def test_chain(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        assert descendants_map(g) == {1: {2, 3}, 2: {3}, 3: set()}
        assert ancestors_map(g) == {1: set(), 2: {1}, 3: {1, 2}}

    def test_empty(self):
        assert descendants_map(DiGraph()) == {}

    @given(small_dags())
    def test_matches_bfs(self, graph):
        desc = descendants_map(graph)
        anc = ancestors_map(graph)
        for v in graph.vertices():
            assert desc[v] == forward_reachable(graph, v)
            assert anc[v] == backward_reachable(graph, v)


class TestReferenceTOL:
    def test_three_constraints_hold(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (1, 3)])
        order = LevelOrder([2, 1, 3])
        lab = reference_tol(g, order)
        desc = descendants_map(g)
        for v in g.vertices():
            for u in lab.label_in[v]:
                assert v in desc[u]          # Reachability
                assert order.higher(u, v)    # Level
            for u in lab.label_out[v]:
                assert u in desc[v]
                assert order.higher(u, v)

    def test_direct_cover_example(self):
        # 1 -> 2 -> 3 with order 2 > 1 > 3: 1 ∉ Lin(3) because the only
        # path runs through 2, which outranks 1.
        g = DiGraph(edges=[(1, 2), (2, 3)])
        lab = reference_tol(g, LevelOrder([2, 1, 3]))
        assert lab.label_in[3] == {2}
        assert lab.label_out[1] == {2}

    @given(dags_with_order())
    def test_witness_completeness(self, pair):
        """Lemma 1: every reachable pair has a witness, none spurious."""
        graph, order = pair
        lab = reference_tol(graph, order)
        desc = descendants_map(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                expected = s == t or t in desc[s]
                assert lab.query(s, t) == expected

    @given(dags_with_order())
    def test_minimality(self, pair):
        """Lemma 2: dropping any label breaks its own query."""
        graph, order = pair
        lab = reference_tol(graph, order)
        for v in list(lab.vertices()):
            for u in list(lab.label_in[v]):
                lab.remove_in_label(v, u)
                assert not lab.query(u, v)
                lab.add_in_label(v, u)
            for u in list(lab.label_out[v]):
                lab.remove_out_label(v, u)
                assert not lab.query(v, u)
                lab.add_out_label(v, u)
