"""Tests for ReachabilityIndex derived queries (witness/descendants/ancestors)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.index import ReachabilityIndex
from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import backward_reachable, forward_reachable


@pytest.fixture
def cyclic():
    # a <-> b cycle feeding c; d isolated.
    return ReachabilityIndex(
        DiGraph(edges=[("a", "b"), ("b", "a"), ("b", "c")], vertices=["d"])
    )


class TestWitness:
    def test_same_component(self, cyclic):
        assert cyclic.witness("a", "b") == "a"

    def test_cross_component(self, cyclic):
        w = cyclic.witness("a", "c")
        assert w in {"a", "b", "c"}

    def test_unreachable(self, cyclic):
        assert cyclic.witness("c", "a") is None
        assert cyclic.witness("a", "d") is None

    def test_unknown_vertex(self, cyclic):
        with pytest.raises(VertexNotFoundError):
            cyclic.witness("a", "ghost")


class TestReachSets:
    def test_component_members_included(self, cyclic):
        assert cyclic.descendants("a") == {"b", "c"}
        assert cyclic.ancestors("c") == {"a", "b"}

    def test_self_excluded(self, cyclic):
        assert "a" not in cyclic.descendants("a")
        assert "c" not in cyclic.ancestors("c")

    def test_isolated(self, cyclic):
        assert cyclic.descendants("d") == set()
        assert cyclic.ancestors("d") == set()

    def test_after_update(self, cyclic):
        cyclic.insert_edge("c", "d")
        assert "d" in cyclic.descendants("a")
        cyclic.delete_edge("c", "d")
        assert "d" not in cyclic.descendants("a")


@given(st.integers(0, 120))
def test_reach_sets_match_graph_truth(seed):
    r = random.Random(seed)
    n = r.randint(1, 9)
    g = DiGraph(vertices=range(n))
    for i in range(n):
        for j in range(n):
            if i != j and r.random() < 0.25:
                g.add_edge_if_absent(i, j)
    idx = ReachabilityIndex(g)
    for v in g.vertices():
        assert idx.descendants(v) == forward_reachable(g, v)
        assert idx.ancestors(v) == backward_reachable(g, v)
        for t in g.vertices():
            w = idx.witness(v, t)
            if idx.query(v, t):
                assert w is not None
                # The witness lies on some v ⇝ t path.
                assert w == v or w in forward_reachable(g, v)
                assert w == t or t in forward_reachable(g, w)
            else:
                assert w is None
