"""Differential suite for the flat update kernels.

``engine="csr"`` re-implements the Section-5 update algorithms (candidate
generation, label spreading, pruning, the Δk level sweep, relocation,
and delete-repair) on preallocated scratch arrays.  This file pins the
flat path to two independent oracles over random update traces:

* the legacy object engine (``engine="object"``) — same algorithms on
  the original dict/set structures; the two indices must stay *exactly*
  equal (same labels, same level order) after every operation;
* :func:`repro.core.reference.reference_tol` — the Definition-1 labeling
  derived from reachability sets, checked at trace end.

Traces mix all four :class:`~repro.core.ops.UpdateOp` kinds and are
applied through ``op.apply(index)``, so the differential also covers the
UpdateOp dispatch surface.  A second group of tests pins the scratch
contract itself: steady-state updates reuse the *same* buffer objects
(no reallocation), generations only grow, and buffers stop growing once
the id space stops growing.
"""

import random

import pytest

from repro.core.index import TOLIndex
from repro.core.ops import UpdateOp
from repro.core.reference import reference_tol
from repro.core.scratch import UpdateScratch
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

# ----------------------------------------------------------------------
# Trace generation: a DAG-preserving random mutation stream
# ----------------------------------------------------------------------


def _topo_order(graph: DiGraph):
    """Kahn's algorithm; deterministic (sorted ready set)."""
    indeg = {v: graph.in_degree(v) for v in graph.vertices()}
    ready = sorted(v for v, d in indeg.items() if d == 0)
    out = []
    while ready:
        v = ready.pop(0)
        out.append(v)
        for w in sorted(graph.out_neighbors(v)):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    return out


class _TraceGen:
    """Generate valid UpdateOps against a shadow graph.

    Acyclicity is maintained with an explicit total order ``self.rank``:
    every edge goes from lower to higher rank, so any generated insert
    can never close a cycle.
    """

    def __init__(self, graph: DiGraph, seed: int):
        self.rng = random.Random(seed)
        self.shadow = graph.copy()
        self.rank = {v: i for i, v in enumerate(_topo_order(graph))}
        self.next_vertex = 10_000

    def _ranked(self):
        return sorted(self.shadow.vertices(), key=self.rank.__getitem__)

    def next_op(self):
        rng = self.rng
        verts = self._ranked()
        roll = rng.random()
        if roll < 0.35 or len(verts) < 4:
            v = self.next_vertex
            self.next_vertex += 1
            pos = rng.randint(0, len(verts))
            below = verts[:pos]
            above = verts[pos:]
            ins = rng.sample(below, min(len(below), rng.randint(0, 3)))
            outs = rng.sample(above, min(len(above), rng.randint(0, 3)))
            self.rank[v] = (
                (self.rank[below[-1]] if below else -1)
                + (self.rank[above[0]] if above else len(self.rank) + 1)
            ) / 2
            return UpdateOp.insert_vertex(v, ins, outs)
        if roll < 0.55:
            return UpdateOp.delete_vertex(rng.choice(verts))
        if roll < 0.80:
            for _ in range(20):
                a, b = rng.sample(verts, 2)
                if self.rank[a] > self.rank[b]:
                    a, b = b, a
                if not self.shadow.has_edge(a, b):
                    return UpdateOp.insert_edge(a, b)
            return UpdateOp.delete_vertex(rng.choice(verts))
        edges = list(self.shadow.edges())
        if not edges:
            return UpdateOp.delete_vertex(rng.choice(verts))
        return UpdateOp.delete_edge(*rng.choice(edges))

    def emit(self, op: UpdateOp) -> None:
        op.apply_to_graph(self.shadow)


CASES = [(12, 20, 1), (16, 30, 2), (20, 45, 3), (24, 70, 4), (30, 50, 5)]


@pytest.mark.parametrize("case", CASES, ids=lambda c: "n%d-m%d-s%d" % c)
def test_flat_equals_object_equals_reference(case):
    n, m, seed = case
    base = random_dag(n, m, seed=seed)
    flat = TOLIndex.build(base, order="butterfly-u", engine="csr")
    obj = TOLIndex.build(base, order="butterfly-u", engine="object")
    assert flat.engine == "csr" and obj.engine == "object"
    assert flat.labeling.snapshot() == obj.labeling.snapshot()

    gen = _TraceGen(base, seed * 977)
    for step in range(60):
        op = gen.next_op()
        op.apply(flat)
        op.apply(obj)
        gen.emit(op)
        # Exact engine equivalence after *every* op: labels and order.
        assert flat.labeling.snapshot() == obj.labeling.snapshot(), (
            step,
            op,
        )
        assert list(flat.order) == list(obj.order), (step, op)
    # Definition-1 oracle at trace end: the surviving labeling is the
    # unique minimal TOL index of the shadow graph under the live order.
    ref = reference_tol(gen.shadow, flat.order)
    assert flat.labeling.snapshot() == ref.snapshot()
    flat.labeling.check_invariants()


def test_edge_round_trip_reuses_one_snapshot():
    """insert_edge/delete_edge share a single CSR snapshot per call."""
    base = random_dag(20, 40, seed=9)
    flat = TOLIndex.build(base, engine="csr")
    obj = TOLIndex.build(base, engine="object")
    rng = random.Random(13)
    shadow = base.copy()
    rank = {v: i for i, v in enumerate(_topo_order(base))}
    for _ in range(25):
        verts = sorted(shadow.vertices(), key=rank.__getitem__)
        a, b = rng.sample(verts, 2)
        if rank[a] > rank[b]:
            a, b = b, a
        if shadow.has_edge(a, b):
            shadow.remove_edge(a, b)
            flat.delete_edge(a, b)
            obj.delete_edge(a, b)
        else:
            shadow.add_edge(a, b)
            flat.insert_edge(a, b)
            obj.insert_edge(a, b)
        assert flat.labeling.snapshot() == obj.labeling.snapshot()
    assert flat.labeling.snapshot() == reference_tol(
        shadow, flat.order
    ).snapshot()


# ----------------------------------------------------------------------
# Scratch contract: reuse, generations, no growth after warmup
# ----------------------------------------------------------------------

_BUFFERS = (
    "seen",
    "mark_a",
    "mark_b",
    "counts",
    "queue",
    "cand",
    "buf_a",
    "buf_b",
    "mem_a",
    "mem_b",
    "topo",
    "keys",
    "key_mark",
)


def _buffer_ids(scratch: UpdateScratch):
    return {name: id(getattr(scratch, name)) for name in _BUFFERS}


def _buffer_lens(scratch: UpdateScratch):
    return {name: len(getattr(scratch, name)) for name in _BUFFERS}


def test_scratch_buffers_are_reused_across_updates():
    base = random_dag(18, 36, seed=21)
    idx = TOLIndex.build(base, engine="csr")
    # Warmup: one insert/delete round trip materializes the scratch and
    # sizes every buffer to the id-space capacity.
    idx.insert_vertex("warm", [0, 1], [5])
    idx.delete_vertex("warm")
    scratch = idx.labeling.scratch
    assert isinstance(scratch, UpdateScratch)
    ids_before = _buffer_ids(scratch)
    lens_before = _buffer_lens(scratch)
    gen_before = scratch.generation

    # Steady state: insert/delete churn that reuses freed interner ids,
    # so the id space — and therefore every buffer — must not grow.
    for i in range(6):
        idx.insert_vertex(("churn", i), [0, 2], [7])
        idx.delete_vertex(("churn", i))

    assert idx.labeling.scratch is scratch
    assert _buffer_ids(scratch) == ids_before, "a buffer was reallocated"
    assert _buffer_lens(scratch) == lens_before, "a buffer grew in steady state"
    assert scratch.generation > gen_before


def test_scratch_generations_strictly_increase():
    s = UpdateScratch()
    g0 = s.begin(32)
    seen = s.seen
    gens = [g0] + [s.next_gen() for _ in range(5)]
    assert gens == sorted(set(gens)), "generations must be strictly increasing"
    assert all(g > 0 for g in gens), "generation 0 must never mark anything"
    # begin() at unchanged capacity keeps the same arrays.
    s.begin(16)
    assert s.seen is seen
    # Growth extends in place rather than replacing the list object.
    s.begin(4096)
    assert s.seen is seen
    assert len(s.seen) >= 4096


def test_scratch_marks_never_collide_across_generations():
    s = UpdateScratch()
    g1 = s.begin(8)
    s.seen[3] = g1
    g2 = s.next_gen()
    assert s.seen[3] != g2, "stale mark must not leak into a new generation"
    s.seen[3] = g2
    assert s.seen[3] == g2
