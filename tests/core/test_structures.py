"""Structural stress tests: named graph families that corner the algorithms.

Random fuzzing explores typical shapes; these families hit the extremes —
long chains (deep recursion/propagation), stars (huge fan-in/out), crowns
(complete bipartite reachability: the |Sin|·|Sout| worst case that
motivates the score function), diamonds (maximal path redundancy) and
layered butterflies (cover chains through multiple levels).  Every family
is run through construction, updates, reduction and freezing, each
validated against the Definition-1 reference.
"""

import pytest

from repro.core.butterfly import butterfly_build
from repro.core.frozen import freeze
from repro.core.index import TOLIndex
from repro.core.orders import butterfly_upper_order, random_order_strategy
from repro.core.reference import reference_tol
from repro.core.validation import assert_queries_correct
from repro.graph.digraph import DiGraph

# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------


def chain(n: int) -> DiGraph:
    """0 -> 1 -> ... -> n-1."""
    return DiGraph(edges=[(i, i + 1) for i in range(n - 1)], vertices=range(n))


def out_star(n: int) -> DiGraph:
    """hub -> leaf_i for every leaf."""
    return DiGraph(edges=[("hub", i) for i in range(n)])


def in_star(n: int) -> DiGraph:
    """leaf_i -> hub."""
    return DiGraph(edges=[(i, "hub") for i in range(n)])


def crown(n: int) -> DiGraph:
    """Complete bipartite a_i -> b_j: the |Sin|x|Sout| blow-up shape."""
    return DiGraph(
        edges=[(f"a{i}", f"b{j}") for i in range(n) for j in range(n)]
    )


def crown_with_cut(n: int) -> DiGraph:
    """Every a_i -> m -> b_j, plus one direct chord: m is a near-cut vertex."""
    g = DiGraph()
    for i in range(n):
        g.add_edge(f"a{i}", "m")
        g.add_edge("m", f"b{i}")
    g.add_edge("a0", "b0")
    return g


def diamond_stack(depth: int) -> DiGraph:
    """Chained diamonds: s_i -> {x_i, y_i} -> s_{i+1}: 2^depth paths."""
    g = DiGraph()
    for i in range(depth):
        g.add_edge(f"s{i}", f"x{i}")
        g.add_edge(f"s{i}", f"y{i}")
        g.add_edge(f"x{i}", f"s{i + 1}")
        g.add_edge(f"y{i}", f"s{i + 1}")
    return g


def layered_butterfly(width: int, layers: int) -> DiGraph:
    """Complete bipartite connections between consecutive layers."""
    g = DiGraph()
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                g.add_edge((layer, i), (layer + 1, j))
    return g


FAMILIES = {
    "chain": lambda: chain(60),
    "out_star": lambda: out_star(50),
    "in_star": lambda: in_star(50),
    "crown": lambda: crown(8),
    "crown_with_cut": lambda: crown_with_cut(10),
    "diamond_stack": lambda: diamond_stack(12),
    "layered_butterfly": lambda: layered_butterfly(4, 4),
}


@pytest.fixture(params=sorted(FAMILIES), ids=sorted(FAMILIES))
def family(request):
    return request.param, FAMILIES[request.param]()


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


class TestConstruction:
    def test_bu_matches_reference(self, family):
        name, graph = family
        order = butterfly_upper_order(graph)
        got = butterfly_build(graph, order)
        from repro.core.order import LevelOrder

        ref = reference_tol(graph, LevelOrder(list(order)))
        assert got.snapshot() == ref.snapshot()

    def test_adversarial_random_order_still_correct(self, family):
        name, graph = family
        lab = butterfly_build(graph, random_order_strategy(graph, seed=13))
        assert_queries_correct(graph, lab)

    def test_cut_vertex_gets_top_rank(self):
        graph = crown_with_cut(10)
        order = butterfly_upper_order(graph)
        # m connects 10 sources to 10 sinks; every score function worth
        # its salt must rank it first.
        assert order.first() == "m"

    def test_crown_size_depends_on_orientation(self):
        # Crown under a bad order (all a's above all b's, no mediator)
        # costs ~n^2 labels; BU cannot do better than n^2 either (there is
        # no cut vertex), so sizes match the structural lower bound.
        g = crown(8)
        lab = butterfly_build(g, butterfly_upper_order(g))
        assert lab.size() >= 8 * 8  # one witness per (a, b) pair minimum

    def test_crown_with_cut_is_linear(self):
        g = crown_with_cut(10)
        lab = butterfly_build(g, butterfly_upper_order(g))
        # m covers everything: ~2 labels per outer vertex, not n^2.
        assert lab.size() <= 4 * 10 + 4


# ----------------------------------------------------------------------
# Updates
# ----------------------------------------------------------------------


class TestUpdates:
    def test_delete_the_hub(self, family):
        name, graph = family
        idx = TOLIndex.build(graph, order="butterfly-u")
        victim = idx.order.first()  # the structurally most-loaded vertex
        idx.delete_vertex(victim)
        live = graph.copy()
        live.remove_vertex(victim)
        ref = reference_tol(live, idx.order)
        assert idx.labeling.snapshot() == ref.snapshot()

    def test_reinsert_the_hub(self, family):
        name, graph = family
        idx = TOLIndex.build(graph, order="butterfly-u")
        victim = idx.order.first()
        ins = graph.in_neighbors(victim)
        outs = graph.out_neighbors(victim)
        size_before = idx.size()
        idx.delete_vertex(victim)
        idx.insert_vertex(victim, ins, outs)
        assert idx.size() <= size_before  # optimal placement (Lemma 3)
        ref = reference_tol(idx.graph_copy(), idx.order)
        assert idx.labeling.snapshot() == ref.snapshot()

    def test_chain_middle_deletion_splits(self):
        idx = TOLIndex.build(chain(40))
        idx.delete_vertex(20)
        assert idx.query(0, 19)
        assert not idx.query(0, 21)
        assert idx.query(21, 39)


# ----------------------------------------------------------------------
# Reduction and freezing
# ----------------------------------------------------------------------


class TestReductionAndFreeze:
    def test_reduction_is_sound_on_structures(self, family):
        name, graph = family
        idx = TOLIndex.build(graph, order="topological")
        before = idx.size()
        idx.reduce_labels()
        assert idx.size() <= before
        ref = reference_tol(idx.graph_copy(), idx.order)
        assert idx.labeling.snapshot() == ref.snapshot()

    def test_chain_reduction_beats_topological(self):
        # A source-first chain under TF order is quadratic; reduction must
        # collapse it to near-linear (binary-split shape).
        idx = TOLIndex.build(chain(40), order="topological")
        quadratic = idx.size()
        idx.reduce_labels(max_rounds=3)
        assert idx.size() < quadratic / 3

    def test_freeze_on_structures(self, family):
        name, graph = family
        live = TOLIndex.build(graph, order="butterfly-u")
        frozen = freeze(live)
        for s in list(graph.vertices())[:12]:
            for t in list(graph.vertices())[:12]:
                assert frozen.query(s, t) == live.query(s, t)
