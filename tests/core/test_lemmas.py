"""The paper's formal claims, one test (or property test) per lemma.

Cross-cutting results are exercised throughout the suite; this module is
the explicit lemma-by-lemma index so each published claim has a named
test:

* **Lemma 1** — the witness-set query (Equation 1) is correct.
* **Lemma 2** — every TOL label is load-bearing (minimality).
* **Lemma 3** — insertion yields a TOL index and a size-minimal level.
* **Lemma 4** — deletion yields the TOL index of the reduced graph.
* **Lemma 5** — Butterfly (Algorithm 5) outputs the TOL index.
* **Section 7.1** — S⊥/S⊤ bound the exact scores from below/above.
* **Section 6** — a delete/re-insert round trip never grows the index.
"""

import random

import pytest
from hypothesis import given

from repro.core.butterfly import butterfly_build
from repro.core.deletion import delete_vertex
from repro.core.insertion import insert_vertex
from repro.core.order import LevelOrder
from repro.core.orders import exact_scores, lower_bound_scores, upper_bound_scores
from repro.core.reference import descendants_map, reference_tol

from ..conftest import dags_with_order, make_random_dag


@given(dags_with_order())
def test_lemma_1_query_correctness(pair):
    """W(s,t) ≠ ∅ iff s -> t, for every pair of every fuzzed index."""
    graph, order = pair
    lab = butterfly_build(graph, order)
    desc = descendants_map(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            assert lab.query(s, t) == (s == t or t in desc[s])


@given(dags_with_order())
def test_lemma_2_minimality(pair):
    """Removing any label breaks exactly the query it witnesses."""
    graph, order = pair
    lab = butterfly_build(graph, order)
    for v in list(lab.vertices()):
        for u in list(lab.label_in[v]):
            lab.remove_in_label(v, u)
            assert not lab.query(u, v)
            lab.add_in_label(v, u)
        for u in list(lab.label_out[v]):
            lab.remove_out_label(v, u)
            assert not lab.query(v, u)
            lab.add_out_label(v, u)


@pytest.mark.parametrize("trial", range(15))
def test_lemma_3_insertion_validity_and_optimality(trial):
    """Insertion produces the Definition-1 index and the minimal size."""
    r = random.Random(7000 + trial)
    g = make_random_dag(3000 + trial, max_n=8)
    if g.num_vertices < 2:
        pytest.skip("too small")
    seq = list(g.vertices())
    r.shuffle(seq)
    v = r.choice(seq)
    sub = g.copy()
    sub.remove_vertex(v)
    base = [u for u in seq if u != v]

    lab = butterfly_build(sub, LevelOrder(base))
    insert_vertex(g, lab, v)
    assert lab.snapshot() == reference_tol(g, lab.order).snapshot()

    sizes = []
    for pos in ["bottom", *(("above", u) for u in base)]:
        lab2 = butterfly_build(sub, LevelOrder(base))
        insert_vertex(g, lab2, v, placement=pos)
        sizes.append(lab2.size())
    assert lab.size() == min(sizes)


@pytest.mark.parametrize("trial", range(15))
def test_lemma_4_deletion_validity(trial):
    """Deletion produces the Definition-1 index of the reduced graph."""
    r = random.Random(8000 + trial)
    g = make_random_dag(4000 + trial, max_n=10)
    if g.num_vertices < 2:
        pytest.skip("too small")
    seq = list(g.vertices())
    r.shuffle(seq)
    lab = butterfly_build(g, LevelOrder(seq))
    delete_vertex(g, lab, r.choice(seq))
    assert lab.snapshot() == reference_tol(g, lab.order).snapshot()


@given(dags_with_order())
def test_lemma_5_butterfly_is_the_tol_index(pair):
    """Algorithm 5's output equals the Definition-1 construction."""
    graph, order = pair
    got = butterfly_build(graph, LevelOrder(list(order)))
    assert got.snapshot() == reference_tol(graph, order).snapshot()


@given(dags_with_order())
def test_section_7_1_score_bounds(pair):
    """S⊥ ≤ exact ≤ S⊤ for in- and out-scores, everywhere."""
    graph, _ = pair
    exact = exact_scores(graph)
    upper = upper_bound_scores(graph)
    lower = lower_bound_scores(graph)
    for v in graph.vertices():
        for side in (0, 1):
            assert lower[v][side] <= exact[v][side] + 1e-9
            assert upper[v][side] >= exact[v][side] - 1e-9


@given(dags_with_order())
def test_section_6_round_trip_never_grows(pair):
    """Delete + optimally re-insert each vertex: |L| is non-increasing."""
    graph, order = pair
    live = graph.copy()
    lab = butterfly_build(live, order)
    for v in sorted(graph.vertices(), key=repr):
        before = lab.size()
        ins = live.in_neighbors(v)
        outs = live.out_neighbors(v)
        delete_vertex(live, lab, v)
        live.add_vertex(v)
        for u in ins:
            live.add_edge(u, v)
        for w in outs:
            live.add_edge(v, w)
        insert_vertex(live, lab, v)
        assert lab.size() <= before
