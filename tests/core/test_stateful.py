"""Hypothesis stateful testing: the dynamic index as a state machine.

A `RuleBasedStateMachine` drives :class:`ReachabilityIndex` through
arbitrary interleavings of vertex/edge insertions and deletions, keeping a
plain :class:`DiGraph` as the model.  Invariants checked after every rule:
a sample of queries matches BFS on the model, and the SCC condensation's
internal bookkeeping is consistent.  This is the widest net in the suite —
hypothesis shrinks any failure to a minimal op sequence automatically.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.index import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reachable


class DynamicReachabilityMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.model = DiGraph()
        self.index = None
        self.counter = 0
        self.rng = random.Random(0xBEEF)

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        self.model = DiGraph(vertices=range(n))
        for i in range(n):
            for j in range(n):
                if i != j and rng.random() < 0.25:
                    self.model.add_edge_if_absent(i, j)
        self.index = ReachabilityIndex(self.model)
        self.counter = n

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def insert_vertex(self, data):
        verts = sorted(self.model.vertices(), key=repr)
        ins = [v for v in verts if data.draw(st.booleans(), label="in?")]
        outs = [v for v in verts if data.draw(st.booleans(), label="out?")]
        v = self.counter
        self.counter += 1
        self.index.insert_vertex(v, ins, outs)
        self.model.add_vertex(v)
        for u in ins:
            self.model.add_edge(u, v)
        for w in outs:
            self.model.add_edge_if_absent(v, w)

    @precondition(lambda self: self.model.num_vertices > 1)
    @rule(data=st.data())
    def delete_vertex(self, data):
        verts = sorted(self.model.vertices(), key=repr)
        v = data.draw(st.sampled_from(verts), label="victim")
        self.index.delete_vertex(v)
        self.model.remove_vertex(v)

    @rule(data=st.data())
    def insert_edge(self, data):
        verts = sorted(self.model.vertices(), key=repr)
        candidates = [
            (a, b)
            for a in verts
            for b in verts
            if a != b and not self.model.has_edge(a, b)
        ]
        if not candidates:
            return
        a, b = data.draw(st.sampled_from(candidates), label="edge")
        self.index.insert_edge(a, b)
        self.model.add_edge(a, b)

    @precondition(lambda self: self.model.num_edges > 0)
    @rule(data=st.data())
    def delete_edge(self, data):
        edges = sorted(self.model.edges(), key=repr)
        a, b = data.draw(st.sampled_from(edges), label="edge")
        self.index.delete_edge(a, b)
        self.model.remove_edge(a, b)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def queries_match_model(self):
        if self.index is None:
            return
        verts = sorted(self.model.vertices(), key=repr)
        if not verts:
            return
        for _ in range(10):
            s = self.rng.choice(verts)
            t = self.rng.choice(verts)
            assert self.index.query(s, t) == bidirectional_reachable(
                self.model, s, t
            ), (s, t)

    @invariant()
    def condensation_consistent(self):
        if self.index is not None:
            self.index.condensation.check_invariants()

    @invariant()
    def sizes_consistent(self):
        if self.index is not None:
            assert self.index.num_vertices == self.model.num_vertices
            assert self.index.num_edges == self.model.num_edges


DynamicReachabilityMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None
)
TestDynamicReachability = DynamicReachabilityMachine.TestCase
