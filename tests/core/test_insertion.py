"""Tests for vertex insertion (Algorithms 1–3).

The heavyweight guarantees — insertion at *any* placement reproduces the
Definition-1 reference on the updated graph, and the default placement is
the global size minimizer — are checked by brute force over every possible
position on random DAGs.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.butterfly import butterfly_build
from repro.core.insertion import choose_level, insert_vertex
from repro.core.order import LevelOrder
from repro.core.reference import reference_tol
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

from ..conftest import make_random_dag


def split_out_vertex(graph, order_seq, v):
    """Return (graph without v, order without v)."""
    sub = graph.copy()
    sub.remove_vertex(v)
    return sub, [u for u in order_seq if u != v]


class TestBasics:
    def test_insert_into_empty(self):
        g = DiGraph(vertices=["v"])
        lab = butterfly_build(DiGraph(), LevelOrder())
        insert_vertex(g, lab, "v")
        assert "v" in lab
        assert lab.query("v", "v")

    def test_insert_chain_head(self):
        g = DiGraph(edges=[(1, 2)])
        sub = DiGraph(vertices=[2])
        lab = butterfly_build(sub, LevelOrder([2]))
        insert_vertex(g, lab, 1)
        assert lab.query(1, 2)
        assert not lab.query(2, 1)

    def test_duplicate_insert_rejected(self):
        g = DiGraph(vertices=[1])
        lab = butterfly_build(g, LevelOrder([1]))
        with pytest.raises(IndexStateError):
            insert_vertex(g, lab, 1)

    def test_vertex_missing_from_graph_rejected(self):
        lab = butterfly_build(DiGraph(), LevelOrder())
        with pytest.raises(IndexStateError):
            insert_vertex(DiGraph(), lab, "ghost")

    def test_unknown_placement_rejected(self):
        g = DiGraph(vertices=[1])
        lab = butterfly_build(DiGraph(), LevelOrder())
        with pytest.raises(IndexStateError):
            insert_vertex(g, lab, 1, placement=("sideways", 2))

    def test_neighbor_not_indexed_rejected(self):
        g = DiGraph(edges=[(1, 2)])
        lab = butterfly_build(DiGraph(), LevelOrder())
        with pytest.raises(IndexStateError):
            insert_vertex(g, lab, 2)


class TestPlacementSemantics:
    def test_bottom_placement(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        sub, seq = split_out_vertex(g, [1, 2, 3], 3)
        lab = butterfly_build(sub, LevelOrder(seq))
        insert_vertex(g, lab, 3, placement="bottom")
        assert lab.order.last() == 3

    def test_above_placement(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        sub, seq = split_out_vertex(g, [1, 2, 3], 2)
        lab = butterfly_build(sub, LevelOrder(seq))
        insert_vertex(g, lab, 2, placement=("above", 1))
        assert list(lab.order) == [2, 1, 3]


@pytest.mark.parametrize("trial", range(40))
def test_insertion_at_every_position_matches_reference(trial):
    r = random.Random(5000 + trial)
    g = make_random_dag(trial, max_n=9)
    if g.num_vertices < 2:
        pytest.skip("too small")
    seq = list(g.vertices())
    r.shuffle(seq)
    v = r.choice(seq)
    sub, base = split_out_vertex(g, seq, v)
    for placement in ["bottom", *(("above", u) for u in base)]:
        lab = butterfly_build(sub, LevelOrder(base))
        insert_vertex(g, lab, v, placement=placement)
        ref = reference_tol(g, lab.order)
        assert lab.snapshot() == ref.snapshot(), placement
        lab.check_invariants()


@pytest.mark.parametrize("trial", range(40))
def test_default_placement_is_globally_optimal(trial):
    r = random.Random(6000 + trial)
    g = make_random_dag(1000 + trial, max_n=9)
    if g.num_vertices < 2:
        pytest.skip("too small")
    seq = list(g.vertices())
    r.shuffle(seq)
    v = r.choice(seq)
    sub, base = split_out_vertex(g, seq, v)

    sizes = []
    for placement in ["bottom", *(("above", u) for u in base)]:
        lab = butterfly_build(sub, LevelOrder(base))
        insert_vertex(g, lab, v, placement=placement)
        sizes.append(lab.size())

    lab = butterfly_build(sub, LevelOrder(base))
    insert_vertex(g, lab, v)  # Algorithm-3 default
    assert lab.size() == min(sizes)
    ref = reference_tol(g, lab.order)
    assert lab.snapshot() == ref.snapshot()


@pytest.mark.parametrize("trial", range(25))
def test_choose_level_theta_is_exact(trial):
    r = random.Random(7000 + trial)
    g = make_random_dag(2000 + trial, max_n=9)
    if g.num_vertices < 2:
        pytest.skip("too small")
    seq = list(g.vertices())
    r.shuffle(seq)
    v = r.choice(seq)
    sub, base = split_out_vertex(g, seq, v)

    lab = butterfly_build(sub, LevelOrder(base))
    insert_vertex(g, lab, v, placement="bottom")
    bottom_size = lab.size()
    choice = choose_level(lab, v)

    lab2 = butterfly_build(sub, LevelOrder(base))
    insert_vertex(g, lab2, v, placement=choice.placement)
    assert lab2.size() - bottom_size == choice.theta


def test_incremental_build_equals_batch_build():
    """Inserting every vertex one by one converges to a valid TOL."""
    g = random_dag(25, 80, seed=9)
    from repro.graph.dag import topological_order

    live = DiGraph()
    lab = butterfly_build(DiGraph(), LevelOrder())
    for v in topological_order(g):
        ins = [u for u in g.in_neighbors(v) if u in live]
        live.add_vertex(v)
        for u in ins:
            live.add_edge(u, v)
        insert_vertex(live, lab, v)
    ref = reference_tol(live, lab.order)
    assert lab.snapshot() == ref.snapshot()
    assert live == g


@given(st.integers(0, 10_000))
def test_insertion_keeps_surviving_order_stable(seed):
    """The relative order of pre-existing vertices never changes."""
    r = random.Random(seed)
    g = make_random_dag(seed % 500, max_n=8)
    if g.num_vertices < 2:
        return
    seq = list(g.vertices())
    r.shuffle(seq)
    v = r.choice(seq)
    sub, base = split_out_vertex(g, seq, v)
    lab = butterfly_build(sub, LevelOrder(base))
    insert_vertex(g, lab, v)
    after = [u for u in lab.order if u != v]
    assert after == base
