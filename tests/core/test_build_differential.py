"""Differential suite: CSR kernel ≡ legacy object build ≡ Definition 1.

The flat-array engine (``engine="csr"``) re-implements Butterfly's
peeling sweeps on a completely different representation, so this file
pins it to two independent oracles on a spread of random DAGs:

* the legacy dict-walking build (``engine="object"``) — same algorithm,
  original data structures;
* :func:`repro.core.reference.reference_tol` — the Definition-1
  labeling, derived from reachability sets rather than any algorithm.

Every case runs both ``prune`` variants (the pruned and verbatim
Algorithm-5 traversals must produce the identical minimal labeling) and
cycles through all named order strategies.  A final test covers the
interned-id tie-breaking contract of the order strategies (satellite of
the ``str(v)``-based ``_tie_key`` removal).
"""

import random

import pytest

from repro.core.butterfly import butterfly_build
from repro.core.order import LevelOrder
from repro.core.orders import ORDER_STRATEGIES, resolve_order_strategy
from repro.core.reference import reference_tol
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

#: Deterministic (num_vertices, num_edges, seed) cases spanning sparse
#: chains to near-dense DAGs; ~50 cases paired with cycling strategies.
CASES = [
    (n, int(n * density), seed)
    for seed, n in enumerate(range(8, 58, 2))
    for density in (0.5, 2.0)
]

#: Strategy names to cycle through (exact-greedy is quadratic; it gets
#: the small half of the cases only via the cycling below).
STRATEGY_NAMES = [
    "butterfly-u",
    "butterfly-l",
    "topological",
    "reverse-topological",
    "degree",
    "hierarchical",
    "random",
    "exact-greedy",
]


def _case_id(case):
    n, m, seed = case
    return f"n{n}-m{m}-s{seed}"


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_engines_match_reference(case):
    n, m, seed = case
    graph = random_dag(n, m, seed=seed)
    name = STRATEGY_NAMES[seed % len(STRATEGY_NAMES)]
    if name == "exact-greedy" and n > 30:
        name = "butterfly-u"
    order = resolve_order_strategy(name)(graph)
    ref = reference_tol(graph, LevelOrder(list(order))).snapshot()
    for prune in (True, False):
        csr = butterfly_build(
            graph, LevelOrder(list(order)), prune=prune, engine="csr"
        )
        obj = butterfly_build(
            graph, LevelOrder(list(order)), prune=prune, engine="object"
        )
        assert csr.snapshot() == ref, (name, prune)
        assert obj.snapshot() == ref, (name, prune)
        csr.check_invariants()


def test_engines_match_on_mixed_type_vertices():
    # Vertices whose types cannot be mutually ordered (the old
    # ``str(v)``-based tie key existed to make sorting them possible;
    # interned ids make it unnecessary).
    vertices = [3, "b", ("t", 1), None, frozenset([1]), "a", 7]
    graph = DiGraph(vertices=vertices)
    graph.add_edge(3, "b")
    graph.add_edge("b", ("t", 1))
    graph.add_edge(None, "b")
    graph.add_edge("a", 7)
    for name in STRATEGY_NAMES:
        order = resolve_order_strategy(name)(graph)
        ref = reference_tol(graph, LevelOrder(list(order))).snapshot()
        for engine in ("csr", "object"):
            got = butterfly_build(
                graph, LevelOrder(list(order)), engine=engine
            )
            assert got.snapshot() == ref, (name, engine)


class TestTieBreaking:
    """Order-strategy ties resolve by interned id == insertion order."""

    def test_edgeless_graph_keeps_insertion_order(self):
        # No edges: every score/degree ties, so the ranking must be the
        # insertion order itself for every score-ranked strategy.
        vertices = ["z", 3, ("t", 0), None, "a", 1]
        graph = DiGraph(vertices=vertices)
        for name in ("butterfly-u", "butterfly-l", "degree", "hierarchical"):
            order = resolve_order_strategy(name)(graph)
            assert list(order) == vertices, name

    def test_partial_ties_are_deterministic(self):
        # Two structurally identical components: their twin vertices tie
        # on every score; re-running and rebuilding must agree exactly.
        def build_graph():
            g = DiGraph()
            for prefix in ("p", "q"):
                for i in range(5):
                    g.add_vertex((prefix, i))
            for prefix in ("p", "q"):
                g.add_edge((prefix, 0), (prefix, 2))
                g.add_edge((prefix, 1), (prefix, 2))
                g.add_edge((prefix, 2), (prefix, 3))
                g.add_edge((prefix, 2), (prefix, 4))
            return g

        for name in sorted(set(ORDER_STRATEGIES)):
            strategy = ORDER_STRATEGIES[name]
            a = list(strategy(build_graph()))
            b = list(strategy(build_graph()))
            assert a == b, name
            # Ties between the p-twin and q-twin go to the p-twin
            # (inserted first => lower interned id).  random shuffles;
            # reverse-topological reverses the id tie-break by design.
            if name in ("random", "reverse-topological"):
                continue
            positions = {v: i for i, v in enumerate(a)}
            for i in range(5):
                assert positions[("p", i)] < positions[("q", i)], name

    def test_random_strategy_seeded(self):
        graph = random_dag(30, 60, seed=1)
        s = ORDER_STRATEGIES["random"]
        assert list(s(graph)) == list(s(graph))
        assert list(s(graph, seed=1)) != list(s(graph, seed=2))
