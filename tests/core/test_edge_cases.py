"""Edge-case coverage: self-loops, singletons, degenerate shapes."""

import pytest

from repro.core.index import ReachabilityIndex, TOLIndex
from repro.errors import NotADagError
from repro.graph.condensation import DynamicCondensation
from repro.graph.digraph import DiGraph


class TestSelfLoops:
    def test_condensation_absorbs_self_loop(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 1), (1, 2)]))
        assert dc.dag.num_vertices == 2
        assert not dc.dag.has_edge(dc.component(1), dc.component(1))
        dc.check_invariants()

    def test_self_loop_edge_insert_is_silent(self):
        g = DiGraph(vertices=[1, 2])
        idx = ReachabilityIndex(g)
        idx.insert_edge(1, 1)
        assert idx.query(1, 1)
        assert not idx.query(1, 2)
        idx.condensation.check_invariants()

    def test_self_loop_edge_delete(self):
        idx = ReachabilityIndex(DiGraph(edges=[(1, 1), (1, 2)]))
        idx.delete_edge(1, 1)
        assert idx.query(1, 2)
        idx.condensation.check_invariants()

    def test_tol_index_rejects_self_loop(self):
        with pytest.raises(NotADagError):
            TOLIndex.build(DiGraph(edges=[(1, 1)]))

    def test_tol_insert_edge_rejects_self_loop(self):
        idx = TOLIndex.build(DiGraph(vertices=[1]))
        with pytest.raises(NotADagError):
            idx.insert_edge(1, 1)


class TestDegenerateShapes:
    def test_single_vertex_everything(self):
        idx = TOLIndex.build(DiGraph(vertices=["only"]))
        assert idx.query("only", "only")
        assert idx.size() == 0
        report = idx.reduce_labels()
        assert report.final_size == 0
        idx.delete_vertex("only")
        assert idx.num_vertices == 0

    def test_empty_reachability_index_updates(self):
        idx = ReachabilityIndex()
        idx.insert_vertex("a")
        idx.insert_vertex("b", in_neighbors=["a"])
        assert idx.query("a", "b")
        idx.delete_vertex("a")
        assert idx.num_vertices == 1

    def test_totally_disconnected_graph(self):
        g = DiGraph(vertices=range(30))
        idx = TOLIndex.build(g)
        assert idx.size() == 0
        for s in range(0, 30, 7):
            for t in range(0, 30, 7):
                assert idx.query(s, t) == (s == t)

    def test_two_vertex_toggle(self):
        """Insert/delete the same edge repeatedly; state must not drift."""
        idx = TOLIndex.build(DiGraph(vertices=[1, 2]))
        for _ in range(5):
            idx.insert_edge(1, 2)
            assert idx.query(1, 2)
            idx.delete_edge(1, 2)
            assert not idx.query(1, 2)
        assert idx.size() == 0

    def test_rebuild_after_emptying(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2)]))
        idx.delete_vertex(1)
        idx.delete_vertex(2)
        idx.insert_vertex("x")
        idx.insert_vertex("y", in_neighbors=["x"])
        assert idx.query("x", "y")


class TestSweepParameterPlumbing:
    def test_figures_accept_precomputed_sweeps(self):
        from repro.bench.experiments import (
            fig2_insertion,
            fig4_deletion,
            fig5_index_size,
            fig6_preprocessing,
            fig7_query_static,
            run_static_sweep,
            run_update_sweep,
        )

        upd = run_update_sweep(datasets=["wiki"], num_vertices=120, num_updates=4)
        assert fig2_insertion(sweep=upd).rows[0][0] == "wiki"
        assert fig4_deletion(sweep=upd).rows[0][0] == "wiki"

        sta = run_static_sweep(datasets=["wiki"], num_vertices=120, num_queries=30)
        for fig in (fig5_index_size, fig6_preprocessing, fig7_query_static):
            result = fig(sweep=sta)
            assert result.rows[0][0] == "wiki"
            assert len(result.rows) == 1
