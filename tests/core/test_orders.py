"""Tests for level-order strategies and the Section-7.1 score functions."""

import pytest
from hypothesis import given

from repro.core.butterfly import butterfly_build
from repro.core.orders import (
    ORDER_STRATEGIES,
    butterfly_lower_order,
    butterfly_upper_order,
    degree_order_strategy,
    exact_greedy_order,
    exact_scores,
    hierarchical_order_strategy,
    lower_bound_scores,
    random_order_strategy,
    resolve_order_strategy,
    reverse_topological_order_strategy,
    score_function,
    topological_order_strategy,
    upper_bound_scores,
)
from repro.errors import GraphError
from repro.graph.dag import topological_rank
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag, random_layered_dag

from ..conftest import small_dags


class TestScoreFunction:
    def test_zero_case(self):
        assert score_function(0, 0) == 0.0

    def test_formula(self):
        # (3*4 + 3 + 4) / (3 + 4) = 19/7
        assert score_function(3, 4) == pytest.approx(19 / 7)

    def test_symmetric(self):
        assert score_function(2, 5) == score_function(5, 2)

    def test_one_sided(self):
        # (0 + 6 + 0) / 6 = 1: pure sources/sinks score exactly 1.
        assert score_function(6, 0) == pytest.approx(1.0)


class TestScores:
    def test_exact_scores_chain(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        scores = exact_scores(g)
        assert scores[1] == (0, 2)
        assert scores[2] == (1, 1)
        assert scores[3] == (2, 0)

    def test_upper_bound_counts_paths(self):
        # Diamond: 1 -> 2 -> 4, 1 -> 3 -> 4.  Vertex 4's exact in-score is
        # 3 but S⊤ counts vertex 1 twice (once per path).
        g = DiGraph(edges=[(1, 2), (1, 3), (2, 4), (3, 4)])
        s = upper_bound_scores(g)
        assert s[4][0] == 4.0
        assert s[1][1] == 4.0

    def test_lower_bound_splits_mass(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (2, 4), (3, 4)])
        s = lower_bound_scores(g)
        # 1's mass splits over its two out-neighbors: each contributes 1/2,
        # plus 1 each for 2 and 3 themselves: S⊥in(4) = 2·(0.5 + ... )
        assert s[4][0] == pytest.approx(3.0)

    @given(small_dags())
    def test_bounds_sandwich_exact(self, graph):
        exact = exact_scores(graph)
        upper = upper_bound_scores(graph)
        lower = lower_bound_scores(graph)
        for v in graph.vertices():
            assert lower[v][0] <= exact[v][0] + 1e-9
            assert lower[v][1] <= exact[v][1] + 1e-9
            assert upper[v][0] >= exact[v][0] - 1e-9
            assert upper[v][1] >= exact[v][1] - 1e-9


class TestStrategies:
    @pytest.mark.parametrize("name", sorted(set(ORDER_STRATEGIES)))
    def test_every_strategy_is_a_permutation(self, name):
        g = random_dag(15, 40, seed=1)
        order = resolve_order_strategy(name)(g)
        assert sorted(order, key=repr) == sorted(g.vertices(), key=repr)

    def test_unknown_strategy(self):
        with pytest.raises(GraphError) as excinfo:
            resolve_order_strategy("nope")
        # The error lists every valid name, so typos are self-correcting.
        for name in ORDER_STRATEGIES:
            assert name in str(excinfo.value)

    def test_non_string_non_callable_strategy(self):
        with pytest.raises(TypeError):
            resolve_order_strategy(42)

    def test_facades_resolve_uniformly(self):
        from repro.core.index import ReachabilityIndex, TOLIndex

        g = random_dag(6, 8, seed=0)
        with pytest.raises(GraphError):
            TOLIndex.build(g, order="nope")
        with pytest.raises(GraphError):
            ReachabilityIndex(g, order="nope")
        with pytest.raises(TypeError):
            ReachabilityIndex(g, order=42)
        # Name and callable spellings build equivalent indices.
        a = TOLIndex.build(g, order="bu")
        b = ReachabilityIndex(g, order=butterfly_upper_order)
        for s in g.vertices():
            for t in g.vertices():
                assert a.query(s, t) == b.query(s, t), (s, t)

    def test_callable_passthrough(self):
        fn = resolve_order_strategy(topological_order_strategy)
        assert fn is topological_order_strategy

    def test_topological_strategy_matches_rank(self):
        g = random_dag(12, 30, seed=2)
        order = topological_order_strategy(g)
        rank = topological_rank(g)
        seq = list(order)
        assert all(rank[seq[i]] < rank[seq[i + 1]] for i in range(len(seq) - 1))

    def test_reverse_topological(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        assert list(reverse_topological_order_strategy(g)) == [3, 2, 1]

    def test_degree_strategy_sorted(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (1, 4), (2, 3)])
        order = degree_order_strategy(g)
        assert order.first() == 1  # degree 3

    def test_hierarchical_prefers_middle_hubs(self):
        # b has in-degree 2 and out-degree 2; a and c are one-sided.
        g = DiGraph(edges=[("a1", "b"), ("a2", "b"), ("b", "c1"), ("b", "c2")])
        assert hierarchical_order_strategy(g).first() == "b"

    def test_random_orders_differ_by_seed(self):
        g = random_dag(20, 0, seed=0)
        a = list(random_order_strategy(g, seed=1))
        b = list(random_order_strategy(g, seed=2))
        assert a != b

    def test_exact_greedy_on_figure1(self):
        g = figure1_dag()
        order = exact_greedy_order(g)
        # f(b) = f(h) = 2.2 tops Figure 1's scores; ties break to 'b'.
        assert order.first() == "b"

    def test_exact_greedy_removes_before_rescoring(self):
        # After the hub is removed the residual scores must be recomputed:
        # on a star through one cut vertex the remaining vertices all
        # score 0 and fall back to tie-break order.
        g = DiGraph(edges=[("s1", "hub"), ("s2", "hub"), ("hub", "t1"), ("hub", "t2")])
        order = exact_greedy_order(g)
        assert order.first() == "hub"
        assert list(order)[1:] == ["s1", "s2", "t1", "t2"]


class TestOrderQuality:
    """The paper's headline static claim: BU/BL beat DL/TF on index size."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bu_not_worse_than_tf_on_layered(self, seed):
        g = random_layered_dag(250, 4.0, seed=seed)
        size = {}
        for name, strat in [
            ("bu", butterfly_upper_order),
            ("tf", topological_order_strategy),
        ]:
            size[name] = butterfly_build(g, strat(g)).size()
        assert size["bu"] <= size["tf"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bu_not_worse_than_random(self, seed):
        g = random_layered_dag(200, 3.0, seed=seed)
        bu = butterfly_build(g, butterfly_upper_order(g)).size()
        rnd = butterfly_build(g, random_order_strategy(g, seed=seed)).size()
        assert bu <= rnd

    def test_bl_produces_working_index(self):
        g = random_layered_dag(150, 3.0, seed=5)
        lab = butterfly_build(g, butterfly_lower_order(g))
        from repro.core.validation import assert_valid_tol

        assert_valid_tol(g, lab)
