"""Unit tests for the TOLLabeling data structure."""

import pytest

from repro.core.labeling import TOLLabeling
from repro.core.order import LevelOrder
from repro.errors import IndexStateError


@pytest.fixture
def lab():
    return TOLLabeling(LevelOrder([1, 2, 3, 4]))


class TestRegistry:
    def test_initial_vertices(self, lab):
        assert set(lab.vertices()) == {1, 2, 3, 4}
        assert lab.num_vertices == 4
        assert all(lab.label_in[v] == set() for v in lab.vertices())

    def test_add_vertex_requires_order_membership(self, lab):
        with pytest.raises(IndexStateError):
            lab.add_vertex(99)

    def test_add_vertex(self, lab):
        lab.order.insert_last(5)
        lab.add_vertex(5)
        assert 5 in lab

    def test_double_add_rejected(self, lab):
        with pytest.raises(IndexStateError):
            lab.add_vertex(1)

    def test_drop_vertex_strips_everywhere(self, lab):
        lab.add_in_label(3, 1)
        lab.add_out_label(3, 2)
        lab.add_in_label(4, 3)
        lab.drop_vertex(3)
        assert 3 not in lab
        assert lab.inv_in[1] == set()
        assert lab.inv_out[2] == set()
        assert lab.label_in[4] == set()
        lab.check_invariants()


class TestLabelMutation:
    def test_add_and_inverted(self, lab):
        lab.add_in_label(3, 1)
        assert 1 in lab.label_in[3]
        assert 3 in lab.inv_in[1]

    def test_remove(self, lab):
        lab.add_out_label(4, 2)
        lab.remove_out_label(4, 2)
        assert lab.label_out[4] == set()
        assert lab.inv_out[2] == set()

    def test_discard(self, lab):
        lab.add_in_label(2, 1)
        assert lab.discard_in_label(2, 1) is True
        assert lab.discard_in_label(2, 1) is False
        assert lab.discard_out_label(2, 1) is False

    def test_clear(self, lab):
        lab.add_in_label(4, 1)
        lab.add_in_label(4, 2)
        lab.clear_in_labels(4)
        assert lab.label_in[4] == set()
        assert lab.inv_in[1] == set()
        lab.check_invariants()

    def test_size(self, lab):
        assert lab.size() == 0
        lab.add_in_label(3, 1)
        lab.add_out_label(2, 1)
        assert lab.size() == 2
        assert lab.size_bytes() == 8
        assert lab.label_count(3) == 1


class TestQuery:
    def test_reflexive(self, lab):
        assert lab.query(2, 2) is True

    def test_via_out_label(self, lab):
        lab.add_out_label(3, 2)  # 3 can reach 2
        assert lab.query(3, 2) is True

    def test_via_in_label(self, lab):
        lab.add_in_label(3, 2)  # 2 can reach 3
        assert lab.query(2, 3) is True

    def test_via_common_witness(self, lab):
        lab.add_out_label(3, 1)
        lab.add_in_label(4, 1)
        assert lab.query(3, 4) is True

    def test_negative(self, lab):
        assert lab.query(3, 4) is False

    def test_unknown_vertex_raises(self, lab):
        with pytest.raises(IndexStateError):
            lab.query(1, "ghost")
        with pytest.raises(IndexStateError):
            lab.query("ghost", "ghost")

    def test_witness(self, lab):
        lab.add_out_label(3, 1)
        lab.add_in_label(4, 1)
        assert lab.witness(3, 4) == 1
        assert lab.witness(2, 2) == 2
        assert lab.witness(2, 4) is None
        lab.add_out_label(3, 4)
        assert lab.witness(3, 4) == 4


class TestSnapshots:
    def test_snapshot_immutable_view(self, lab):
        lab.add_in_label(2, 1)
        snap = lab.snapshot()
        assert snap[2] == (frozenset({1}), frozenset())

    def test_equals_labels(self, lab):
        other = TOLLabeling(LevelOrder([1, 2, 3, 4]))
        assert lab.equals_labels(other)
        lab.add_in_label(2, 1)
        assert not lab.equals_labels(other)

    def test_repr(self, lab):
        assert "TOLLabeling" in repr(lab)
