"""Tests for label statistics."""

from repro.core.index import TOLIndex
from repro.core.order import LevelOrder
from repro.core.stats import labeling_stats, top_label_holders
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag


class TestStats:
    def test_empty(self):
        idx = TOLIndex.build(DiGraph())
        stats = labeling_stats(idx.labeling)
        assert stats.num_vertices == 0
        assert stats.total_labels == 0
        assert stats.mean == 0.0
        assert stats.max == 0

    def test_figure1(self):
        idx = TOLIndex.build(figure1_dag(), order=LevelOrder(list("abcdefgh")))
        stats = labeling_stats(idx.labeling)
        assert stats.num_vertices == 8
        assert stats.total_labels == 14
        assert stats.in_labels == 9
        assert stats.out_labels == 5
        assert stats.mean == 14 / 8
        # a carries no labels under l1; f carries the most (Lin={a,b,d},
        # Lout={c}).
        assert stats.empty_vertices == 1
        assert stats.max == 4
        assert stats.histogram == {0: 1, 1: 2, 2: 4, 4: 1}

    def test_histogram_totals(self):
        g = random_dag(30, 120, seed=0)
        idx = TOLIndex.build(g)
        stats = labeling_stats(idx.labeling)
        assert sum(stats.histogram.values()) == 30
        assert sum(k * v for k, v in stats.histogram.items()) == stats.total_labels

    def test_percentiles_ordered(self):
        g = random_dag(40, 200, seed=1)
        stats = labeling_stats(TOLIndex.build(g).labeling)
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.max

    def test_render(self):
        stats = labeling_stats(TOLIndex.build(figure1_dag()).labeling)
        text = stats.render()
        assert "|V|=8" in text and "|L|=" in text


class TestTopHolders:
    def test_sorted_descending(self):
        g = random_dag(25, 100, seed=2)
        idx = TOLIndex.build(g)
        top = top_label_holders(idx.labeling, k=5)
        assert len(top) == 5
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_k_larger_than_graph(self):
        idx = TOLIndex.build(DiGraph(vertices=[1, 2]))
        assert len(top_label_holders(idx.labeling, k=10)) == 2

    def test_deterministic_tie_break(self):
        idx = TOLIndex.build(DiGraph(vertices=[3, 1, 2]))
        assert [v for v, _ in top_label_holders(idx.labeling)] == [1, 2, 3]
