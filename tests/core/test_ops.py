"""Encoding contract of :class:`repro.core.ops.UpdateOp`.

The one update representation is shared by the service queue, WAL
records, the wire protocol, and serve-replay — so its codec must be
exact: ``to_dict`` -> JSON -> ``from_dict`` -> ``to_dict`` is required
to be *byte-identical* (deterministic JSON with sorted keys), and the
versioned decoder must keep accepting the legacy short kinds that PR-5
era WAL files and wire payloads carry.
"""

import json
import struct
import zlib

import pytest
from hypothesis import given, strategies as st

from repro.core.ops import KINDS, UpdateOp
from repro.errors import WorkloadError
from repro.service.durability import WriteAheadLog, recover_state

# ----------------------------------------------------------------------
# Hypothesis strategies: JSON-representable hashable vertices.
# ----------------------------------------------------------------------

_scalar = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)
_vertex = st.one_of(_scalar, st.tuples(_scalar, _scalar))


@st.composite
def update_ops(draw):
    kind = draw(st.sampled_from(KINDS))
    if kind == "insert_vertex":
        return UpdateOp.insert_vertex(
            draw(_vertex),
            draw(st.lists(_vertex, max_size=4)),
            draw(st.lists(_vertex, max_size=4)),
        )
    if kind == "delete_vertex":
        return UpdateOp.delete_vertex(draw(_vertex))
    if kind == "insert_edge":
        return UpdateOp.insert_edge(draw(_vertex), draw(_vertex))
    return UpdateOp.delete_edge(draw(_vertex), draw(_vertex))


def _canonical_json(op: UpdateOp) -> bytes:
    return json.dumps(
        op.to_dict(), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


@given(update_ops())
def test_dict_round_trip_is_identity(op):
    assert UpdateOp.from_dict(op.to_dict()) == op


@given(update_ops())
def test_json_round_trip_is_byte_identical(op):
    blob = _canonical_json(op)
    decoded = UpdateOp.from_dict(json.loads(blob.decode("utf-8")))
    assert _canonical_json(decoded) == blob


@given(op=update_ops())
def test_wal_bytes_round_trip_is_byte_identical(tmp_path_factory, op):
    """Append -> scan -> re-encode reproduces the exact record bytes."""
    directory = tmp_path_factory.mktemp("wal")
    path = directory / "wal.log"
    with WriteAheadLog(path, fsync="never") as wal:
        wal.append(op)
    first_image = path.read_bytes()
    # Decode what landed on disk, rewrite it through a second log, and
    # require the byte images to match: nothing about the codec may
    # depend on which process (or release) wrote the record.
    with WriteAheadLog(path, fsync="never") as wal:
        records = wal.records()
    assert [o for _, o in records] == [op]
    path2 = directory / "wal2.log"
    with WriteAheadLog(path2, fsync="never") as wal2:
        wal2.append(records[0][1])
    assert path2.read_bytes() == first_image


def test_tuple_vertices_survive_json():
    op = UpdateOp.insert_vertex(("a", 1), [("b", 2)], [("c", (3, 4))])
    decoded = UpdateOp.from_dict(json.loads(_canonical_json(op)))
    assert decoded == op
    assert decoded.vertex == ("a", 1)
    assert decoded.outs == (("c", (3, 4)),)


# ----------------------------------------------------------------------
# Versioned decode: legacy short kinds
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "legacy, canonical",
    [
        ("addv", "insert_vertex"),
        ("delv", "delete_vertex"),
        ("adde", "insert_edge"),
        ("dele", "delete_edge"),
    ],
)
def test_legacy_short_kinds_normalize(legacy, canonical):
    if canonical == "insert_vertex":
        payload = {"kind": legacy, "vertex": 7, "ins": [1], "outs": [2]}
    elif canonical == "delete_vertex":
        payload = {"kind": legacy, "vertex": 7}
    else:
        payload = {"kind": legacy, "tail": 1, "head": 2}
    op = UpdateOp.from_dict(payload)
    assert op.kind == canonical
    # Re-encoding always emits the canonical kind, never the legacy one.
    assert op.to_dict()["kind"] == canonical


def test_unknown_kind_rejected():
    with pytest.raises(WorkloadError):
        UpdateOp.from_dict({"kind": "truncate_graph"})
    with pytest.raises(WorkloadError):
        UpdateOp("truncate_graph")


def test_constructor_normalizes_short_kind():
    assert UpdateOp("addv", vertex=3).kind == "insert_vertex"
    assert UpdateOp("dele", tail=1, head=2).kind == "delete_edge"


# ----------------------------------------------------------------------
# A PR-5-era WAL (short kinds on disk) still recovers
# ----------------------------------------------------------------------

_WAL_MAGIC = b"TOLWAL1\n"
_WAL_BASE = struct.Struct("<Q")
_RECORD_HEADER = struct.Struct("<II")


def _legacy_record(seq: int, payload: dict) -> bytes:
    body = json.dumps(
        {"seq": seq, "op": payload}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def test_pr5_era_wal_recovers(tmp_path):
    """Hand-build a WAL whose records use the old short kinds."""
    directory = tmp_path / "durable"
    directory.mkdir()
    legacy_ops = [
        {"kind": "addv", "vertex": "a", "ins": [], "outs": []},
        {"kind": "addv", "vertex": "b", "ins": [], "outs": []},
        {"kind": "adde", "tail": "a", "head": "b"},
        {"kind": "addv", "vertex": "c", "ins": ["b"], "outs": []},
        {"kind": "dele", "tail": "a", "head": "b"},
        {"kind": "delv", "vertex": "c"},
    ]
    blob = _WAL_MAGIC + _WAL_BASE.pack(0)
    for seq, payload in enumerate(legacy_ops, start=1):
        blob += _legacy_record(seq, payload)
    (directory / "wal.log").write_bytes(blob)

    report = recover_state(directory, fsync="never")
    assert report.replayed == len(legacy_ops)
    assert report.skipped == 0
    graph = report.graph
    assert sorted(graph.vertices()) == ["a", "b"]
    assert graph.num_edges == 0
