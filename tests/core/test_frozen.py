"""Tests for the frozen (CSR-packed) index."""

import pytest
from hypothesis import given

from repro.core.frozen import freeze
from repro.core.index import TOLIndex
from repro.core.reference import descendants_map
from repro.errors import IndexStateError
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag

from ..conftest import small_dags


@pytest.fixture
def live():
    return TOLIndex.build(figure1_dag(), order="butterfly-u")


class TestFreeze:
    def test_queries_match_live(self, live):
        frozen = freeze(live)
        for s in "abcdefgh":
            for t in "abcdefgh":
                assert frozen.query(s, t) == live.query(s, t), (s, t)

    def test_label_views_match(self, live):
        frozen = freeze(live)
        for v in "abcdefgh":
            assert frozen.in_labels(v) == live.in_labels(v)
            assert frozen.out_labels(v) == live.out_labels(v)

    def test_size_preserved(self, live):
        frozen = freeze(live)
        assert frozen.size() == live.size()
        assert frozen.num_vertices == live.num_vertices

    def test_packed_bytes_accounting(self, live):
        frozen = freeze(live)
        # size_bytes is label payload only: size() * itemsize, the same
        # formula the live labeling uses, so the two are comparable.
        item = frozen._in_labels.itemsize
        assert frozen.size_bytes() == item * live.size()
        assert frozen.size_bytes() == item * frozen.size()
        # buffer_bytes additionally counts the two (n+1)-long offset arrays.
        offsets = frozen._in_offsets.itemsize * 2 * (live.num_vertices + 1)
        assert frozen.buffer_bytes() == frozen.size_bytes() + offsets

    def test_live_size_bytes_matches_frozen_formula(self, live):
        # The reconciled accounting: both label stores are 'i'-typed and
        # both report size() * itemsize, so the numbers are identical.
        frozen = freeze(live)
        from repro.core.labeling import BYTES_PER_LABEL

        assert live.labeling.size_bytes() == BYTES_PER_LABEL * live.size()
        assert frozen._in_labels.itemsize == BYTES_PER_LABEL
        assert live.labeling.size_bytes() == frozen.size_bytes()

    def test_unknown_vertex(self, live):
        frozen = freeze(live)
        with pytest.raises(IndexStateError):
            frozen.query("a", "ghost")

    def test_contains_and_repr(self, live):
        frozen = freeze(live)
        assert "a" in frozen and "zz" not in frozen
        assert "FrozenTOLIndex" in repr(frozen)

    def test_live_index_unaffected(self, live):
        freeze(live)
        live.insert_vertex("z", in_neighbors=["c"])
        assert live.query("e", "z")

    def test_query_many(self, live):
        frozen = freeze(live)
        answers = frozen.query_many([("e", "c"), ("c", "e"), ("a", "a")])
        assert answers == [True, False, True]

    def test_empty_index(self):
        frozen = freeze(TOLIndex.build(DiGraph()))
        assert frozen.num_vertices == 0
        assert frozen.size() == 0


class TestThaw:
    def test_round_trip(self, live):
        thawed = freeze(live).thaw()
        assert thawed.labeling.snapshot() == live.labeling.snapshot()
        assert list(thawed.order) == list(live.order)
        assert thawed.graph_copy() == live.graph_copy()

    def test_thawed_index_is_updatable(self, live):
        thawed = freeze(live).thaw()
        thawed.insert_vertex("z", in_neighbors=["c"])
        assert thawed.query("e", "z")
        thawed.delete_vertex("a")
        assert not thawed.query("e", "c")


class TestSkewedIntersection:
    def test_galloping_path(self):
        # One huge out-label slice against a tiny in-label slice forces
        # the galloping branch.
        g = DiGraph()
        hub = "hub"
        for i in range(200):
            g.add_edge(hub, i)
        g.add_edge(0, "deep")
        idx = TOLIndex.build(g, order="topological")
        frozen = freeze(idx)
        assert frozen.query(hub, "deep")
        assert not frozen.query("deep", hub)


@given(small_dags())
def test_frozen_matches_ground_truth(graph):
    frozen = freeze(TOLIndex.build(graph, order="degree"))
    desc = descendants_map(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            assert frozen.query(s, t) == (s == t or t in desc[s])


def test_memory_packing_is_denser_than_containers():
    import sys

    g = random_dag(300, 1500, seed=3)
    live = TOLIndex.build(g)
    frozen = freeze(live)
    lab = live.labeling
    # The live index pays one array object (plus inverted-list set) per
    # vertex; the frozen CSR layout pays two flat buffers total.  Compare
    # full frozen footprint against just the live label containers.
    live_bytes = sum(
        sys.getsizeof(lab.in_ids[i]) + sys.getsizeof(lab.out_ids[i])
        for i in lab.interner.ids.values()
    )
    assert frozen.buffer_bytes() < live_bytes
