"""Cross-facade conformance against the `ReachabilityQuerier` protocol.

Two layers of checking:

* structural — every facade passes ``isinstance(..., ReachabilityQuerier)``
  (the protocol is runtime-checkable), and a non-facade does not;
* semantic — one random DAG update/query trace is driven through all four
  facades at once (the frozen index is re-frozen after every update) and
  every sampled query must agree across facades *and* with a BFS oracle
  over a plain mirrored :class:`DiGraph`.  ``query_many`` must equal the
  per-pair answers, and every non-``None`` witness must actually lie on
  some ``s -> t`` path of the oracle graph.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    FrozenTOLIndex,
    ReachabilityIndex,
    ReachabilityQuerier,
    TOLIndex,
    freeze,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag
from repro.graph.traversal import forward_reachable
from repro.service.server import ReachabilityService


def _all_facades(graph: DiGraph):
    return {
        "tol": TOLIndex.build(graph.copy()),
        "reach": ReachabilityIndex(graph.copy()),
        "frozen": freeze(TOLIndex.build(graph.copy())),
        "service": ReachabilityService(graph.copy()),
    }


class TestStructuralConformance:
    @pytest.mark.parametrize("name", ["tol", "reach", "frozen", "service"])
    def test_facade_satisfies_protocol(self, name):
        facade = _all_facades(figure1_dag())[name]
        assert isinstance(facade, ReachabilityQuerier)

    def test_digraph_is_not_a_querier(self):
        assert not isinstance(figure1_dag(), ReachabilityQuerier)

    def test_protocol_is_importable_from_core(self):
        import repro.core

        assert "ReachabilityQuerier" in repro.core.__all__


def _oracle_query(graph: DiGraph, s, t) -> bool:
    return s == t or t in forward_reachable(graph, s)


def _check_agreement(rng, graph: DiGraph, facades: dict) -> None:
    vertices = sorted(graph.vertices())
    if not vertices:
        return
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(12)
    ]
    expected = [_oracle_query(graph, s, t) for s, t in pairs]
    for name, facade in facades.items():
        answers = [facade.query(s, t) for s, t in pairs]
        assert answers == expected, (name, pairs)
        assert facade.query_many(pairs) == expected, name
        for (s, t), reachable in zip(pairs, expected):
            w = facade.witness(s, t)
            if not reachable:
                assert w is None, (name, s, t, w)
            else:
                assert w is not None, (name, s, t)
                assert _oracle_query(graph, s, w), (name, s, t, w)
                assert _oracle_query(graph, w, t), (name, s, t, w)
        # Membership and counts also agree with the oracle graph.
        assert facade.num_vertices == graph.num_vertices, name
        assert vertices[0] in facade, name
        assert ("missing", "sentinel") not in facade, name
        assert facade.size() >= 0 and facade.size_bytes() >= 0, name


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_trace_agreement_across_facades(seed):
    """One update/query trace, four facades, one BFS oracle."""
    rng = random.Random(seed)
    n0 = rng.randint(3, 7)
    # `ranked` fixes a topological order; edges always go forward in it.
    ranked = list(range(n0))
    graph = DiGraph(vertices=ranked)
    for i in range(n0):
        for j in range(i + 1, n0):
            if rng.random() < 0.4:
                graph.add_edge(ranked[i], ranked[j])

    tol = TOLIndex.build(graph.copy())
    reach = ReachabilityIndex(graph.copy())
    service = ReachabilityService(graph.copy())
    next_vertex = n0

    for _ in range(12):
        op = rng.choice(["insert_vertex", "delete_vertex",
                         "insert_edge", "delete_edge", "noop"])
        if op == "insert_vertex":
            pos = rng.randint(0, len(ranked))
            before = [u for u in ranked[:pos] if rng.random() < 0.5]
            after = [u for u in ranked[pos:] if rng.random() < 0.5]
            v = next_vertex
            next_vertex += 1
            ranked.insert(pos, v)
            graph.add_vertex(v)
            for u in before:
                graph.add_edge(u, v)
            for u in after:
                graph.add_edge(v, u)
            for facade in (tol, reach, service):
                facade.insert_vertex(v, in_neighbors=before,
                                     out_neighbors=after)
        elif op == "delete_vertex" and len(ranked) > 2:
            v = rng.choice(ranked)
            ranked.remove(v)
            graph.remove_vertex(v)
            for facade in (tol, reach, service):
                facade.delete_vertex(v)
        elif op == "insert_edge" and len(ranked) >= 2:
            i, j = sorted(rng.sample(range(len(ranked)), 2))
            tail, head = ranked[i], ranked[j]
            if not graph.has_edge(tail, head):
                graph.add_edge(tail, head)
                for facade in (tol, reach, service):
                    facade.insert_edge(tail, head)
        elif op == "delete_edge":
            edges = sorted(graph.edges())
            if edges:
                tail, head = rng.choice(edges)
                graph.remove_edge(tail, head)
                for facade in (tol, reach, service):
                    facade.delete_edge(tail, head)

        facades = {
            "tol": tol,
            "reach": reach,
            "frozen": freeze(tol),
            "service": service,
        }
        _check_agreement(rng, graph, facades)


def test_size_accounting_agrees_between_live_and_frozen(fig1):
    index = TOLIndex.build(fig1)
    frozen = FrozenTOLIndex.from_index(index)
    assert frozen.size() == index.size()
    assert frozen.size_bytes() == index.size_bytes()
