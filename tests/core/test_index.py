"""Tests for the TOLIndex facade (DAG-level public API)."""

import random

import pytest

from repro.core.index import TOLIndex
from repro.core.order import LevelOrder
from repro.core.reference import reference_tol
from repro.core.validation import find_violations
from repro.errors import IndexStateError, NotADagError, UnknownVertexError
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag

from ..conftest import make_random_dag


class TestBuild:
    def test_default_order(self):
        idx = TOLIndex.build(figure1_dag())
        assert idx.query("e", "c")
        assert not idx.query("c", "e")
        assert idx.num_vertices == 8
        assert idx.num_edges == 10

    @pytest.mark.parametrize(
        "order", ["butterfly-u", "butterfly-l", "topological", "degree",
                  "hierarchical", "random"]
    )
    def test_every_strategy_builds_correct_index(self, order):
        g = random_dag(20, 60, seed=1)
        idx = TOLIndex.build(g, order=order)
        assert find_violations(idx.graph_copy(), idx.labeling) == []

    def test_explicit_level_order(self):
        g = DiGraph(edges=[(1, 2)])
        idx = TOLIndex.build(g, order=LevelOrder([2, 1]))
        assert idx.out_labels(1) == frozenset({2})

    def test_cyclic_graph_rejected(self):
        with pytest.raises(NotADagError):
            TOLIndex.build(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_build_copies_graph(self):
        g = figure1_dag()
        idx = TOLIndex.build(g)
        g.remove_vertex("a")  # mutating the caller's graph is harmless
        assert idx.query("a", "c")

    def test_sizes(self):
        idx = TOLIndex.build(figure1_dag(), order=LevelOrder(list("abcdefgh")))
        assert idx.size() == 14
        assert idx.size_bytes() == 56

    def test_contains_and_labels(self):
        idx = TOLIndex.build(figure1_dag(), order=LevelOrder(list("abcdefgh")))
        assert "a" in idx and "zz" not in idx
        assert idx.in_labels("f") == frozenset({"a", "b", "d"})
        assert idx.out_labels("f") == frozenset({"c"})

    def test_witness(self):
        idx = TOLIndex.build(figure1_dag(), order=LevelOrder(list("abcdefgh")))
        assert idx.witness("e", "c") == "a"
        assert idx.witness("c", "e") is None

    def test_repr(self):
        assert "TOLIndex" in repr(TOLIndex.build(DiGraph(vertices=[1])))


class TestUpdates:
    def test_insert_then_query(self):
        idx = TOLIndex.build(figure1_dag())
        idx.insert_vertex("z", in_neighbors=["c"])
        assert idx.query("e", "z")
        assert not idx.query("z", "a")

    def test_insert_cycle_rejected_and_rolled_back(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2)]))
        with pytest.raises(NotADagError):
            idx.insert_vertex(3, in_neighbors=[2], out_neighbors=[1])
        assert 3 not in idx
        assert idx.num_vertices == 2
        # The index still works and can absorb a legal insert.
        idx.insert_vertex(3, in_neighbors=[2])
        assert idx.query(1, 3)

    def test_query_never_inserted_vertex(self):
        # Regression: unknown query endpoints must raise the dedicated
        # KeyError-derived exception, not whatever the label lookup does.
        idx = TOLIndex.build(figure1_dag())
        with pytest.raises(UnknownVertexError) as excinfo:
            idx.query("e", "ghost")
        assert excinfo.value.vertex == "ghost"
        assert "ghost" in str(excinfo.value)
        with pytest.raises(KeyError):
            idx.query("ghost", "e")
        with pytest.raises(IndexStateError):  # the historical contract
            idx.query("ghost", "ghost")

    def test_insert_duplicate_rejected(self):
        idx = TOLIndex.build(DiGraph(vertices=[1]))
        with pytest.raises(IndexStateError):
            idx.insert_vertex(1)

    def test_delete_unknown_rejected(self):
        idx = TOLIndex.build(DiGraph(vertices=[1]))
        with pytest.raises(IndexStateError):
            idx.delete_vertex(2)

    def test_delete_then_queries_update(self):
        idx = TOLIndex.build(figure1_dag())
        idx.delete_vertex("a")
        assert not idx.query("e", "c")
        assert idx.query("b", "c")

    def test_optimal_level_is_side_effect_free(self):
        idx = TOLIndex.build(figure1_dag())
        before = idx.labeling.snapshot()
        choice = idx.optimal_level("probe", in_neighbors=["a"], out_neighbors=["c"])
        assert "probe" not in idx
        assert idx.labeling.snapshot() == before
        assert choice.theta <= 0

    def test_placement_passthrough(self):
        idx = TOLIndex.build(DiGraph(edges=[(1, 2)]), order=LevelOrder([1, 2]))
        idx.insert_vertex(3, in_neighbors=[2], placement="bottom")
        assert idx.order.last() == 3

    @pytest.mark.parametrize("trial", range(15))
    def test_random_update_storm_stays_reference_exact(self, trial):
        r = random.Random(trial)
        g = make_random_dag(trial, max_n=8)
        idx = TOLIndex.build(g, order="butterfly-u")
        live = g.copy()
        nxt = 1000
        for _ in range(10):
            if r.random() < 0.5 and live.num_vertices > 1:
                v = r.choice(list(live.vertices()))
                live.remove_vertex(v)
                idx.delete_vertex(v)
            else:
                verts = list(live.vertices())
                ins = [x for x in verts if r.random() < 0.3]
                outs = [x for x in verts if x not in ins and r.random() < 0.3]
                v = nxt
                nxt += 1
                try:
                    idx.insert_vertex(v, ins, outs)
                except NotADagError:
                    continue  # sampled edges would close a cycle
                live.add_vertex_if_absent(v)
                for u in ins:
                    live.add_edge(u, v)
                for w in outs:
                    live.add_edge(v, w)
            ref = reference_tol(live, idx.order)
            assert idx.labeling.snapshot() == ref.snapshot()


class TestReduceLabels:
    def test_reduce_via_facade(self):
        g = random_dag(15, 40, seed=2)
        idx = TOLIndex.build(g, order="topological")
        before = idx.size()
        report = idx.reduce_labels()
        assert idx.size() == report.final_size <= before
