"""Unit and property tests for the order-maintenance structure."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.order import LevelOrder
from repro.errors import OrderError


class TestBasics:
    def test_initial_sequence(self):
        order = LevelOrder("abc")
        assert list(order) == ["a", "b", "c"]
        assert len(order) == 3

    def test_contains(self):
        order = LevelOrder([1])
        assert 1 in order and 2 not in order

    def test_first_last(self):
        order = LevelOrder([1, 2, 3])
        assert order.first() == 1
        assert order.last() == 3

    def test_empty_first_raises(self):
        with pytest.raises(OrderError):
            LevelOrder().first()
        with pytest.raises(OrderError):
            LevelOrder().last()

    def test_higher(self):
        order = LevelOrder([1, 2, 3])
        assert order.higher(1, 3)
        assert not order.higher(3, 1)
        assert not order.higher(2, 2)

    def test_rank(self):
        order = LevelOrder("xyz")
        assert [order.rank(c) for c in "xyz"] == [1, 2, 3]

    def test_keys_sort_consistently(self):
        order = LevelOrder([5, 3, 9, 1])
        items = [1, 9, 3, 5]
        assert sorted(items, key=order.key) == [5, 3, 9, 1]

    def test_neighbors(self):
        order = LevelOrder([1, 2, 3])
        assert order.predecessor(2) == 1
        assert order.successor(2) == 3
        assert order.predecessor(1) is None
        assert order.successor(3) is None


class TestMutation:
    def test_insert_first(self):
        order = LevelOrder([2])
        order.insert_first(1)
        assert list(order) == [1, 2]

    def test_insert_last(self):
        order = LevelOrder([1])
        order.insert_last(2)
        assert list(order) == [1, 2]

    def test_insert_before_after(self):
        order = LevelOrder([1, 3])
        order.insert_before(2, 3)
        order.insert_after(4, 3)
        assert list(order) == [1, 2, 3, 4]

    def test_remove(self):
        order = LevelOrder([1, 2, 3])
        order.remove(2)
        assert list(order) == [1, 3]
        assert order.successor(1) == 3

    def test_remove_first_and_last(self):
        order = LevelOrder([1, 2, 3])
        order.remove(1)
        order.remove(3)
        assert list(order) == [2]
        assert order.first() == order.last() == 2

    def test_duplicate_insert_raises(self):
        order = LevelOrder([1])
        with pytest.raises(OrderError):
            order.insert_last(1)

    def test_unknown_item_raises(self):
        order = LevelOrder([1])
        with pytest.raises(OrderError):
            order.remove(2)
        with pytest.raises(OrderError):
            order.insert_before(3, 99)


class TestRelabeling:
    def test_pathological_inserts_trigger_relabel_but_stay_correct(self):
        # Repeated insert_first between the same two items exhausts tag
        # gaps quickly; the structure must relabel transparently.
        order = LevelOrder(["z"])
        for i in range(2000):
            order.insert_first(i)
        assert order.relabel_count >= 0  # may or may not have relabeled
        order.check_invariants()
        assert list(order)[-1] == "z"
        assert len(order) == 2001

    def test_adversarial_same_gap_inserts(self):
        order = LevelOrder(["a", "b"])
        for i in range(500):
            order.insert_before(i, "b")  # always squeeze just above 'b'
        order.check_invariants()
        seq = list(order)
        assert seq[0] == "a" and seq[-1] == "b"
        # Later inserts sit closer to 'b'.
        assert seq[1] == 0 and seq[-2] == 499


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1000)), max_size=80))
def test_matches_reference_list(ops):
    """The structure behaves exactly like a plain Python list."""
    order = LevelOrder()
    reference: list[int] = []
    counter = 0
    for op, arg in ops:
        if op == 0 or not reference:  # insert at front
            order.insert_first(counter)
            reference.insert(0, counter)
            counter += 1
        elif op == 1:  # insert at back
            order.insert_last(counter)
            reference.append(counter)
            counter += 1
        elif op == 2:  # insert before a random existing item
            anchor = reference[arg % len(reference)]
            order.insert_before(counter, anchor)
            reference.insert(reference.index(anchor), counter)
            counter += 1
        else:  # remove a random existing item
            victim = reference[arg % len(reference)]
            order.remove(victim)
            reference.remove(victim)
        order.check_invariants()
        assert list(order) == reference
        for i, a in enumerate(reference):
            for b in reference[i + 1:]:
                assert order.higher(a, b)


def test_capacity_relabel_counting():
    order = LevelOrder()
    r = random.Random(0)
    items = list(range(3000))
    for item in items:
        if item == 0 or r.random() < 0.5:
            order.insert_first(item)
        else:
            order.insert_after(item, r.choice(list(order)[:1]))
    order.check_invariants()
    assert len(order) == 3000
