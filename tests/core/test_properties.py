"""Cross-module property tests: the paper's key theorems, fuzzed.

These hypothesis tests tie the whole core together: whatever the graph,
whatever the order, whatever the update sequence — the live index must
remain *the* TOL index of Definition 1 (checked via the independent
reference construction) and must answer every query like a BFS would.
"""


from hypothesis import given, strategies as st

from repro.core.butterfly import butterfly_build
from repro.core.deletion import delete_vertex
from repro.core.insertion import insert_vertex
from repro.core.reference import descendants_map, reference_tol
from repro.errors import NotADagError
from repro.graph.dag import ensure_dag

from ..conftest import dags_with_order


@given(dags_with_order(), st.randoms(use_true_random=False))
def test_update_sequences_stay_reference_exact(pair, r):
    """Interleaved inserts/deletes always equal from-scratch construction."""
    graph, order = pair
    live = graph.copy()
    lab = butterfly_build(live, order)
    nxt = 10_000
    for _ in range(6):
        if r.random() < 0.5 and live.num_vertices > 1:
            v = r.choice(sorted(live.vertices(), key=repr))
            delete_vertex(live, lab, v)
        else:
            verts = sorted(live.vertices(), key=repr)
            ins = [x for x in verts if r.random() < 0.35]
            outs = [x for x in verts if x not in ins and r.random() < 0.35]
            v = nxt
            nxt += 1
            live.add_vertex(v)
            for u in ins:
                live.add_edge(u, v)
            for w in outs:
                live.add_edge(v, w)
            try:
                ensure_dag(live)
            except NotADagError:
                live.remove_vertex(v)
                continue
            insert_vertex(live, lab, v)
        ref = reference_tol(live, lab.order)
        assert lab.snapshot() == ref.snapshot()
        lab.check_invariants()


@given(dags_with_order())
def test_delete_then_reinsert_round_trip_never_grows(pair):
    """The Section-6 observation behind label reduction, per vertex."""
    graph, order = pair
    live = graph.copy()
    lab = butterfly_build(live, order)
    for v in sorted(graph.vertices(), key=repr):
        before = lab.size()
        ins = live.in_neighbors(v)
        outs = live.out_neighbors(v)
        delete_vertex(live, lab, v)
        live.add_vertex(v)
        for u in ins:
            live.add_edge(u, v)
        for w in outs:
            live.add_edge(v, w)
        insert_vertex(live, lab, v)
        assert lab.size() <= before


@given(dags_with_order())
def test_query_equals_ground_truth_after_one_update(pair):
    graph, order = pair
    live = graph.copy()
    lab = butterfly_build(live, order)
    victim = sorted(live.vertices(), key=repr)[0]
    delete_vertex(live, lab, victim)
    desc = descendants_map(live)
    for s in live.vertices():
        for t in live.vertices():
            assert lab.query(s, t) == (s == t or t in desc[s])


@given(dags_with_order())
def test_label_sets_only_hold_higher_levels(pair):
    """The Level Constraint as a standalone fuzzed invariant."""
    graph, order = pair
    lab = butterfly_build(graph, order)
    for v in lab.vertices():
        for u in lab.label_in[v] | lab.label_out[v]:
            assert lab.order.higher(u, v)


@given(dags_with_order())
def test_two_hop_cover_witness_is_on_a_path(pair):
    """Every positive witness really lies on an s ⇝ t path."""
    graph, order = pair
    lab = butterfly_build(graph, order)
    desc = descendants_map(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            w = lab.witness(s, t)
            if w is None:
                continue
            assert (w == s or w in desc[s])
            assert (w == t or t in desc[w])
