"""Reproduction of the paper's running example (Figure 1 / Table 2).

The paper does not print Figure 1's edge list; ``FIGURE1_EDGES`` is the
reconstruction under which the TOL index for the level order
``l1 = a < b < c < d < e < f < g < h`` matches the printed L1 column
*exactly*.  The L2 column of Table 2 contains a typo — ``c`` appears in
``Lout(a)`` and ``Lout(e)`` although the paths a -> g -> c and
e -> a -> g -> c run through ``g``, whose level (1) is above ``c``'s (2),
violating the Path Constraint (and Lemma 2 minimality: ``g`` already
witnesses those queries).  The L2 tests below therefore check the printed
table *except* for those two cells, and assert our construction agrees
with the Definition-1 reference everywhere.
"""

import pytest

from repro.core.butterfly import butterfly_build
from repro.core.labeling import TOLLabeling
from repro.core.order import LevelOrder
from repro.core.reference import reference_tol
from repro.core.validation import assert_queries_correct, assert_valid_tol
from repro.graph.generators import figure1_dag

L1_ORDER = list("abcdefgh")

#: Table 2, left half (level order l1): v -> (Lin, Lout).
TABLE2_L1 = {
    "a": (set(), set()),
    "b": ({"a"}, set()),
    "c": ({"a", "b"}, set()),
    "d": ({"a"}, {"c"}),
    "e": (set(), {"a"}),
    "f": ({"a", "b", "d"}, {"c"}),
    "g": ({"a"}, {"c"}),
    "h": ({"a"}, {"b"}),
}

L2_ORDER = list("gcfbdhae")  # l2: g=1, c=2, f=3, b=4, d=5, h=6, a=7, e=8

#: Table 2, right half, with the two typo cells corrected (see module doc).
TABLE2_L2_CORRECTED = {
    "a": (set(), {"b", "d", "f", "g", "h"}),  # paper adds a spurious "c"
    "b": (set(), {"c", "f"}),
    "c": ({"g"}, set()),
    "d": (set(), {"c", "f"}),
    "e": (set(), {"a", "b", "d", "f", "g", "h"}),  # paper adds a spurious "c"
    "f": (set(), {"c"}),
    "g": (set(), set()),
    "h": (set(), {"b", "c", "f"}),
}


@pytest.fixture
def g():
    return figure1_dag()


def as_expected(labeling: TOLLabeling, table) -> None:
    for v, (lin, lout) in table.items():
        assert labeling.label_in[v] == lin, f"Lin({v})"
        assert labeling.label_out[v] == lout, f"Lout({v})"


class TestL1:
    def test_butterfly_matches_table(self, g):
        lab = butterfly_build(g, LevelOrder(L1_ORDER))
        as_expected(lab, TABLE2_L1)

    def test_reference_matches_table(self, g):
        lab = reference_tol(g, LevelOrder(L1_ORDER))
        as_expected(lab, TABLE2_L1)

    def test_index_size_matches_table(self, g):
        lab = butterfly_build(g, LevelOrder(L1_ORDER))
        expected = sum(len(a) + len(b) for a, b in TABLE2_L1.values())
        assert lab.size() == expected == 14

    def test_queries(self, g):
        lab = butterfly_build(g, LevelOrder(L1_ORDER))
        assert_queries_correct(g, lab)

    def test_example1_narrative(self, g):
        """Example 1's prose: Lin(g) = {a} and only one simple path a -> g."""
        lab = butterfly_build(g, LevelOrder(L1_ORDER))
        assert lab.label_in["g"] == {"a"}
        assert g.in_neighbors("g") == frozenset({"a"})


class TestL2:
    def test_butterfly_matches_corrected_table(self, g):
        lab = butterfly_build(g, LevelOrder(L2_ORDER))
        as_expected(lab, TABLE2_L2_CORRECTED)

    def test_paper_l2_cells_violate_minimality(self, g):
        """The printed L2 'c' entries are redundant: g already witnesses."""
        lab = butterfly_build(g, LevelOrder(L2_ORDER))
        # Query a -> c and e -> c succeed without c in any out-label set.
        assert lab.query("a", "c")
        assert lab.query("e", "c")
        assert "c" not in lab.label_out["a"]
        assert "c" not in lab.label_out["e"]
        assert lab.witness("a", "c") == "g"

    def test_example1_narrative_g_empty(self, g):
        """Example 1: g has the top level in l2, so Lin(g) must be empty."""
        lab = butterfly_build(g, LevelOrder(L2_ORDER))
        assert lab.label_in["g"] == set()

    def test_valid_and_correct(self, g):
        lab = butterfly_build(g, LevelOrder(L2_ORDER))
        assert_valid_tol(g, lab)
        assert_queries_correct(g, lab)


class TestLemma2Minimality:
    """Removing any label breaks exactly its own query (Lemma 2)."""

    @pytest.mark.parametrize("order_seq", [L1_ORDER, L2_ORDER])
    def test_every_label_is_load_bearing(self, g, order_seq):
        base = butterfly_build(g, LevelOrder(order_seq))
        for v in list(base.vertices()):
            for u in list(base.label_in[v]):
                base.remove_in_label(v, u)
                assert not base.query(u, v), f"removing {u} from Lin({v})"
                base.add_in_label(v, u)
            for u in list(base.label_out[v]):
                base.remove_out_label(v, u)
                assert not base.query(v, u), f"removing {u} from Lout({v})"
                base.add_out_label(v, u)
