"""Tests for iterative label reduction (Section 6)."""

import random

import pytest

from repro.core.butterfly import butterfly_build
from repro.core.index import TOLIndex
from repro.core.order import LevelOrder
from repro.core.reduction import reduce_labels
from repro.core.reference import reference_tol
from repro.core.validation import assert_queries_correct
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_layered_dag

from ..conftest import make_random_dag


class TestReport:
    def test_empty_graph(self):
        g = DiGraph()
        lab = butterfly_build(g, LevelOrder())
        report = reduce_labels(g, lab)
        assert report.initial_size == 0
        assert report.final_size == 0
        assert report.reduction_ratio == 0.0

    def test_report_fields(self):
        g = random_dag(15, 40, seed=0)
        seq = list(g.vertices())
        lab = butterfly_build(g, LevelOrder(seq))
        report = reduce_labels(g, lab, max_rounds=1)
        assert report.initial_size >= report.final_size
        assert report.reduction == report.initial_size - report.final_size
        assert report.round_sizes[-1] == lab.size()

    def test_on_vertex_callback(self):
        g = random_dag(8, 12, seed=1)
        lab = butterfly_build(g, LevelOrder(list(g.vertices())))
        calls = []
        reduce_labels(g, lab, on_vertex=lambda v, size: calls.append((v, size)))
        assert len(calls) == g.num_vertices


class TestMonotonicity:
    @pytest.mark.parametrize("trial", range(20))
    def test_never_increases_and_stays_valid(self, trial):
        r = random.Random(trial)
        g = make_random_dag(trial, max_n=10)
        seq = list(g.vertices())
        r.shuffle(seq)
        lab = butterfly_build(g, LevelOrder(seq))
        before_graph = g.copy()
        sizes = [lab.size()]
        report = reduce_labels(g, lab, max_rounds=3)
        sizes.extend(report.round_sizes)
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert g == before_graph  # graph restored after the churn
        ref = reference_tol(g, lab.order)
        assert lab.snapshot() == ref.snapshot()
        assert_queries_correct(g, lab)

    def test_fixpoint_stops_early(self):
        g = random_dag(10, 20, seed=3)
        lab = butterfly_build(g, LevelOrder(list(g.vertices())))
        report = reduce_labels(g, lab, max_rounds=10)
        # Far fewer than 10 rounds actually execute once a fixpoint hits.
        assert len(report.round_sizes) <= 10
        again = reduce_labels(g, lab, max_rounds=1)
        assert again.reduction == 0


class TestEffectiveness:
    """Table 4's qualitative claim: weak orders shrink a lot."""

    def test_tf_on_layered_graph_shrinks(self):
        g = random_layered_dag(150, 3.0, seed=4)
        idx = TOLIndex.build(g, order="topological")
        before = idx.size()
        report = idx.reduce_labels()
        assert report.final_size <= before
        # The topological order on layered graphs is far from optimal;
        # a single round should reclaim a visible fraction.
        assert report.reduction_ratio > 0.05

    def test_reduced_tf_approaches_bu(self):
        g = random_layered_dag(120, 3.0, seed=5)
        tf = TOLIndex.build(g, order="topological")
        tf.reduce_labels(max_rounds=2)
        bu = TOLIndex.build(g, order="butterfly-u")
        # Reduction should close most of the gap (within 25%).
        assert tf.size() <= bu.size() * 1.25

    def test_reduction_on_tree_reaches_bu_quality(self):
        """On trees one reduction round lands at (or below) BU's size."""
        from repro.graph.generators import random_tree_dag

        g = random_tree_dag(200, seed=6)
        idx = TOLIndex.build(g, order="degree")
        idx.reduce_labels()
        bu = TOLIndex.build(g, order="butterfly-u")
        assert idx.size() <= bu.size() * 1.05

    def test_explicit_sweep_order(self):
        g = random_dag(12, 25, seed=7)
        lab = butterfly_build(g, LevelOrder(list(g.vertices())))
        sweep = sorted(g.vertices())
        report = reduce_labels(g, lab, sweep=sweep)
        assert report.final_size <= report.initial_size
