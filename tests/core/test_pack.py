"""Tests for the TOLF pack format (zero-copy frozen-index serialization).

The pack is the repo's snapshot interchange format: ``repro pack``
writes it, ``repro serve --snapshot`` mmaps it, and the shared-memory
publisher ships it between processes.  These tests cover byte-level
round trips, zero-copy attach over mmap and ``SharedMemory``, the
galloping intersection over memoryview-backed buffers, corruption
detection, and the full ``ReachabilityIndex`` restore path (including
applying updates *after* a restore).
"""

import gc
import random
from array import array

import pytest

from repro.core.frozen import FrozenTOLIndex, freeze
from repro.core.index import ReachabilityIndex, TOLIndex
from repro.core.serialize import (
    graph_to_dict,
    hashable_vertex,
    load_pack,
    pack_frozen,
    reachability_index_from_pack,
    save_pack,
    unpack_frozen,
)
from repro.errors import SerializationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag
from repro.graph.traversal import bidirectional_reachable


@pytest.fixture(scope="module")
def fig1_frozen():
    return freeze(TOLIndex.build(figure1_dag(), order="butterfly-u"))


def all_pairs(vertices):
    return [(s, t) for s in vertices for t in vertices]


class TestPackRoundTrip:
    def test_figure1_all_pairs(self, fig1_frozen):
        blob = pack_frozen(fig1_frozen)
        thawed, meta = unpack_frozen(blob)
        for s, t in all_pairs("abcdefgh"):
            assert thawed.query(s, t) == fig1_frozen.query(s, t), (s, t)
        assert meta["vertex_of"] == list(fig1_frozen._vertex_of)

    def test_buffers_are_views_not_copies(self, fig1_frozen):
        blob = pack_frozen(fig1_frozen)
        thawed, _ = unpack_frozen(blob)
        # Zero-copy: the attached index reads straight out of the pack.
        assert isinstance(thawed._in_labels, memoryview)
        assert isinstance(thawed._in_offsets, memoryview)
        assert thawed._in_offsets.itemsize == 8
        assert thawed._in_labels.itemsize == 4

    def test_label_views_and_sizes_survive(self, fig1_frozen):
        thawed, _ = unpack_frozen(pack_frozen(fig1_frozen))
        assert thawed.num_vertices == fig1_frozen.num_vertices
        assert thawed.size() == fig1_frozen.size()
        for v in "abcdefgh":
            assert thawed.in_labels(v) == fig1_frozen.in_labels(v)
            assert thawed.out_labels(v) == fig1_frozen.out_labels(v)

    def test_random_dag_matches_oracle(self):
        graph = random_dag(60, 180, seed=23)
        frozen = freeze(TOLIndex.build(graph, order="butterfly-u"))
        thawed, _ = unpack_frozen(pack_frozen(frozen))
        rng = random.Random(5)
        vertices = list(graph.vertices())
        for _ in range(400):
            s, t = rng.choice(vertices), rng.choice(vertices)
            expected = bidirectional_reachable(graph, s, t)
            assert thawed.query(s, t) == expected, (s, t)

    def test_meta_payload_survives(self, fig1_frozen):
        meta = {"epoch": 42, "note": "hello", "vertices": [["u", 1], "v"]}
        _, out = unpack_frozen(pack_frozen(fig1_frozen, meta))
        assert out["epoch"] == 42
        assert out["note"] == "hello"
        # JSON turns tuples into lists; hashable_vertex undoes it.
        assert hashable_vertex(out["vertices"][0]) == ("u", 1)

    def test_include_edges_false_drops_edges_and_thaw(self, fig1_frozen):
        thawed, _ = unpack_frozen(
            pack_frozen(fig1_frozen, include_edges=False)
        )
        assert thawed._edges == ()
        assert thawed.query("a", "h") == fig1_frozen.query("a", "h")

    def test_thaw_after_round_trip_is_updatable(self, fig1_frozen):
        thawed, _ = unpack_frozen(pack_frozen(fig1_frozen))
        live = thawed.thaw()
        # Find an incomparable pair so the insert stays acyclic.
        s, t = next(
            (s, t)
            for s, t in all_pairs("abcdefgh")
            if s != t and not live.query(s, t) and not live.query(t, s)
        )
        live.insert_edge(s, t)
        assert live.query(s, t)
        live.labeling.check_invariants()

    def test_empty_index(self):
        frozen = freeze(TOLIndex.build(DiGraph(), order="butterfly-u"))
        thawed, _ = unpack_frozen(pack_frozen(frozen))
        assert thawed.num_vertices == 0
        assert thawed.size() == 0


def _bare(out_labels, in_labels):
    """A minimal frozen index exposing raw label slices to _intersect."""
    return FrozenTOLIndex(
        {0: 0},
        [0],
        array("q", [0, len(in_labels)]),
        array("i", in_labels),
        array("q", [0, len(out_labels)]),
        array("i", out_labels),
        (),
    )


class TestGallopingIntersect:
    """The three `_intersect` regimes, over both array and view buffers."""

    def test_short_a_gallops_into_long_b(self):
        out = [7]
        ins = sorted(set(range(0, 200, 3)))  # 7 not in it
        f = _bare(out, ins)
        assert f._intersect(0, len(out), 0, len(ins)) == -1
        out_hit = [9]
        f = _bare(out_hit, ins)
        assert f._intersect(0, 1, 0, len(ins)) == 9

    def test_short_b_gallops_into_long_a(self):
        outs = sorted(set(range(1, 400, 5)))
        ins = [11]
        f = _bare(outs, ins)
        assert f._intersect(0, len(outs), 0, 1) == 11
        f = _bare(outs, [12])
        assert f._intersect(0, len(outs), 0, 1) == -1

    def test_balanced_linear_merge(self):
        outs = [1, 4, 9, 16, 25]
        ins = [2, 4, 8, 16, 32]
        f = _bare(outs, ins)
        assert f._intersect(0, 5, 0, 5) in (4, 16)
        f = _bare([1, 3, 5, 7], [2, 4, 6, 8])
        assert f._intersect(0, 4, 0, 4) == -1

    def test_empty_sides(self):
        f = _bare([], [1, 2, 3])
        assert f._intersect(0, 0, 0, 3) == -1
        f = _bare([1, 2, 3], [])
        assert f._intersect(0, 3, 0, 0) == -1

    def test_gallops_agree_over_memoryview_buffers(self):
        # The serving path runs _intersect over memoryview.cast slices;
        # round-trip through the pack and re-check every regime.
        graph = random_dag(40, 160, seed=9)
        frozen = freeze(TOLIndex.build(graph, order="butterfly-u"))
        thawed, _ = unpack_frozen(pack_frozen(frozen))
        for s in graph.vertices():
            for t in graph.vertices():
                assert thawed.query(s, t) == frozen.query(s, t), (s, t)


class TestPackFiles:
    def test_file_round_trip_mmap(self, fig1_frozen, tmp_path):
        path = tmp_path / "fig1.tolf"
        save_pack(path, fig1_frozen, {"epoch": 3})
        thawed, meta = load_pack(path)
        assert meta["epoch"] == 3
        for s, t in all_pairs("abcdefgh"):
            assert thawed.query(s, t) == fig1_frozen.query(s, t)

    def test_file_round_trip_without_mmap(self, fig1_frozen, tmp_path):
        path = tmp_path / "fig1.tolf"
        save_pack(path, fig1_frozen)
        thawed, _ = load_pack(path, mmap_file=False)
        assert thawed.query("a", "h") == fig1_frozen.query("a", "h")

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.tolf"
        path.write_bytes(b"")
        with pytest.raises(SerializationError):
            load_pack(path)


class TestCorruption:
    def test_bad_magic(self, fig1_frozen):
        blob = bytearray(pack_frozen(fig1_frozen))
        blob[:4] = b"NOPE"
        with pytest.raises(SerializationError, match="magic"):
            unpack_frozen(bytes(blob))

    def test_bad_version(self, fig1_frozen):
        blob = bytearray(pack_frozen(fig1_frozen))
        blob[4] = 0xFF
        with pytest.raises(SerializationError, match="version"):
            unpack_frozen(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(SerializationError, match="header"):
            unpack_frozen(b"TOLF")

    def test_truncated_body(self, fig1_frozen):
        blob = pack_frozen(fig1_frozen)
        with pytest.raises(SerializationError, match="body"):
            unpack_frozen(blob[: len(blob) - 8])

    def test_flipped_body_byte_fails_checksum(self, fig1_frozen):
        blob = bytearray(pack_frozen(fig1_frozen))
        blob[80] ^= 0xFF
        with pytest.raises(SerializationError, match="checksum"):
            unpack_frozen(bytes(blob))
        # verify=False skips the crc (the shm fast path trusts the
        # seqlock instead) — no exception from the checksum itself.
        unpack_frozen(bytes(blob), verify=False)


class TestSharedMemoryAttach:
    def test_freeze_pack_attach_query(self, fig1_frozen):
        from multiprocessing import shared_memory

        blob = pack_frozen(fig1_frozen, {"epoch": 1}, include_edges=False)
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        try:
            shm.buf[: len(blob)] = blob
            thawed, meta = unpack_frozen(shm.buf[: len(blob)])
            assert meta["epoch"] == 1
            for s, t in all_pairs("abcdefgh"):
                assert thawed.query(s, t) == fig1_frozen.query(s, t)
            del thawed
            gc.collect()
        finally:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - diagnostics only
                pass
            shm.unlink()


class TestReachabilityIndexFromPack:
    """The full-pack restore path that `repro serve --snapshot` boots."""

    def _full_pack(self, graph, order="butterfly-u"):
        index = ReachabilityIndex(graph, order=order)
        frozen = freeze(index.tol)
        doc = graph_to_dict(index.condensation.graph)
        hashables = [hashable_vertex(v) for v in doc["vertices"]]
        meta = {
            "vertices": doc["vertices"],
            "graph_edges": doc["edges"],
            "component_of": [
                index.condensation.component_of[v] for v in hashables
            ],
            "epoch": 0,
        }
        return index, pack_frozen(frozen, meta)

    def test_restore_matches_original_on_cyclic_graph(self):
        rng = random.Random(17)
        graph = random_dag(50, 140, seed=17)
        vertices = list(graph.vertices())
        added = 0
        while added < 12:  # back-edges make real SCCs
            s, t = rng.choice(vertices), rng.choice(vertices)
            if s != t and graph.add_edge_if_absent(s, t):
                added += 1
        index, blob = self._full_pack(graph)
        frozen, meta = unpack_frozen(blob)
        restored = reachability_index_from_pack(frozen, meta)
        restored.condensation.check_invariants()
        for _ in range(300):
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert restored.query(s, t) == index.query(s, t), (s, t)

    def test_updates_apply_after_restore(self):
        graph = random_dag(30, 70, seed=3)
        index, blob = self._full_pack(graph)
        frozen, meta = unpack_frozen(blob)
        restored = reachability_index_from_pack(frozen, meta)
        rng = random.Random(1)
        vertices = list(graph.vertices())
        applied = 0
        while applied < 15:
            s, t = rng.choice(vertices), rng.choice(vertices)
            if s == t or not graph.add_edge_if_absent(s, t):
                continue
            restored.insert_edge(s, t)
            applied += 1
        restored.condensation.check_invariants()
        for _ in range(200):
            s, t = rng.choice(vertices), rng.choice(vertices)
            expected = bidirectional_reachable(graph, s, t)
            assert restored.query(s, t) == expected, (s, t)

    def test_query_only_pack_refuses_to_boot(self, fig1_frozen):
        blob = pack_frozen(fig1_frozen, {"epoch": 2}, include_edges=False)
        frozen, meta = unpack_frozen(blob)
        with pytest.raises(SerializationError, match="repro pack"):
            reachability_index_from_pack(frozen, meta)
