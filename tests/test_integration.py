"""End-to-end integration: all subsystems in one realistic lifecycle."""

import random

import pytest

from repro import (
    ReachabilityIndex,
    TOLIndex,
    freeze,
    labeling_stats,
    load_dataset,
    load_index,
    save_index,
)
from repro.baselines.transitive_closure import TransitiveClosureIndex
from repro.bench.harness import METHODS, build_method
from repro.bench.trace import generate_trace, replay_trace
from repro.bench.workloads import generate_queries
from repro.graph.traversal import bidirectional_reachable


class TestFullLifecycle:
    """Build -> persist -> restore -> update -> freeze -> serve."""

    def test_lifecycle(self, tmp_path):
        graph = load_dataset("citeseerx", num_vertices=300, seed=2)
        index = TOLIndex.build(graph, order="butterfly-u")

        # Persist + restore.
        path = tmp_path / "idx.tolx"
        save_index(index, path)
        restored = load_index(path)
        assert restored.labeling.snapshot() == index.labeling.snapshot()

        # Update the restored copy (the original must be unaffected).
        restored.insert_vertex("new", in_neighbors=[0])
        assert "new" in restored and "new" not in index

        # Reduce, then freeze for serving.
        restored.reduce_labels()
        frozen = freeze(restored)
        queries = generate_queries(restored.graph_copy(), 200, seed=3)
        for s, t in queries:
            assert frozen.query(s, t) == restored.query(s, t)

        # Stats stay coherent through it all.
        stats = labeling_stats(restored.labeling)
        assert stats.total_labels == restored.size() == frozen.size()

    def test_trace_through_persistence(self, tmp_path):
        graph = load_dataset("wiki", num_vertices=200, seed=4)
        trace = generate_trace(graph, 80, seed=5)

        index = ReachabilityIndex(graph)
        first = replay_trace(index, trace)

        # Persist the churned TOL, restore, and replay only the queries:
        # answers must match the live index's final state.
        path = tmp_path / "churned.tolx"
        save_index(index.tol, path)
        restored = load_index(path)
        live_comp = index.condensation
        checked = 0
        for op in trace:
            if op.kind != "query":
                continue
            if op.tail not in index or op.head not in index:
                continue  # endpoint deleted later in the trace
            expected = index.query(op.tail, op.head)
            got = restored.query(
                live_comp.component(op.tail), live_comp.component(op.head)
            )
            assert got == expected
            checked += 1
        assert checked > 0


class TestMethodMatrix:
    """Every registered method answers correctly on every dataset family."""

    @pytest.mark.parametrize("dataset", ["RG5", "uniprot22m", "wiki", "patent"])
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_method_on_dataset(self, dataset, method):
        graph = load_dataset(dataset, num_vertices=120, seed=6)
        index = build_method(method, graph)
        tc = TransitiveClosureIndex(graph)
        r = random.Random(7)
        vertices = list(graph.vertices())
        for _ in range(150):
            s, t = r.choice(vertices), r.choice(vertices)
            assert index.query(s, t) == tc.query(s, t), (method, dataset, s, t)


class TestCrossOracleAgreement:
    """Four independent reachability oracles must agree everywhere."""

    def test_oracle_quorum(self):
        from repro.baselines.grail import GrailIndex

        graph = load_dataset("GovWild", num_vertices=150, seed=8)
        oracles = [
            TOLIndex.build(graph, order="butterfly-l"),
            freeze(TOLIndex.build(graph, order="degree")),
            GrailIndex(graph, seed=8),
            TransitiveClosureIndex(graph),
        ]
        vertices = list(graph.vertices())
        r = random.Random(9)
        for _ in range(300):
            s, t = r.choice(vertices), r.choice(vertices)
            answers = {oracle.query(s, t) for oracle in oracles}
            answers.add(bidirectional_reachable(graph, s, t))
            assert len(answers) == 1, (s, t)
