"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.baselines.dagger
import repro.baselines.search
import repro.baselines.transitive_closure
import repro.core.frozen
import repro.core.order
import repro.core.serialize
import repro.graph.condensation
import repro.graph.csr
import repro.graph.digraph
import repro.obs.registry
import repro.service.cache
import repro.service.concurrency
import repro.service.server

MODULES = [
    repro.graph.digraph,
    repro.graph.condensation,
    repro.graph.csr,
    repro.core.order,
    repro.core.frozen,
    repro.core.serialize,
    repro.baselines.dagger,
    repro.baselines.search,
    repro.baselines.transitive_closure,
    repro.obs.registry,
    repro.service.cache,
    repro.service.concurrency,
    repro.service.server,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert tests > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
