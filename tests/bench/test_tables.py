"""Tests for table/number formatting."""

import pytest

from repro.bench.tables import (
    format_bytes,
    format_millis,
    format_ratio,
    format_seconds,
    format_table,
)


class TestSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "—"),
            (250, "250s"),
            (2.5, "2.50s"),
            (0.25, "250.00ms"),
            (0.00025, "250.00us"),
            (2.5e-8, "25ns"),
        ],
    )
    def test_units(self, value, expected):
        assert format_seconds(value) == expected


class TestMillis:
    def test_none(self):
        assert format_millis(None) == "—"

    def test_three_sig_figs(self):
        assert format_millis(0.123456) == "123ms"
        assert format_millis(0.00123456) == "1.23ms"


class TestBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "—"),
            (0, "0B"),
            (512, "512B"),
            (2048, "2.0KiB"),
            (3 * 1024 * 1024, "3.0MiB"),
            (5 * 1024**3, "5.0GiB"),
        ],
    )
    def test_units(self, value, expected):
        assert format_bytes(value) == expected

    def test_huge_values_stay_gib(self):
        assert format_bytes(5000 * 1024**3).endswith("GiB")


class TestRatio:
    def test_percent(self):
        assert format_ratio(0.8161) == "81.61%"

    def test_none(self):
        assert format_ratio(None) == "—"


class TestTable:
    def test_alignment_and_content(self):
        text = format_table(
            "My Title",
            ["name", "value"],
            [["short", "1"], ["a-much-longer-name", "22"]],
            note="footer",
        )
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[-1] == "footer"
        # All data rows align the second column at the same offset.
        header_line = lines[2]
        assert header_line.startswith("name")
        offset = header_line.index("value")
        for line in lines[4:6]:
            cell = line[offset:].strip()
            assert cell in {"1", "22"}

    def test_none_cells_rendered_as_dash(self):
        text = format_table("T", ["a"], [[None]])
        assert "—" in text

    def test_numbers_stringified(self):
        text = format_table("T", ["a"], [[42]])
        assert "42" in text
