"""Tests for the method registry and measurement loops."""

import pytest

from repro.bench.harness import (
    DYNAMIC_METHODS,
    METHODS,
    STATIC_METHODS,
    build_method,
    measure_build,
    measure_queries,
    measure_updates,
)
from repro.bench.workloads import generate_queries, generate_updates
from repro.errors import WorkloadError
from repro.graph.generators import random_dag
from repro.graph.traversal import bidirectional_reachable


@pytest.fixture(scope="module")
def g():
    return random_dag(40, 120, seed=2)


class TestRegistry:
    def test_lineups_match_paper(self):
        assert DYNAMIC_METHODS == ("BU", "BL", "Dagger")
        assert STATIC_METHODS == ("BU", "BL", "HL", "DL", "TF", "Dagger")

    def test_unknown_method(self, g):
        with pytest.raises(WorkloadError):
            build_method("nope", g)

    @pytest.mark.parametrize("name", sorted(METHODS))
    def test_every_method_answers_correctly(self, name, g):
        idx = build_method(name, g)
        queries = generate_queries(g, 60, seed=3)
        for s, t in queries:
            assert idx.query(s, t) == bidirectional_reachable(g, s, t)

    @pytest.mark.parametrize("name", sorted(METHODS))
    def test_every_method_reports_size(self, name, g):
        assert build_method(name, g).size_bytes() >= 0


class TestMeasurement:
    def test_measure_build(self, g):
        res = measure_build("BU", g)
        assert res.method == "BU"
        assert res.build_seconds > 0
        assert res.index_bytes > 0

    def test_measure_queries(self, g):
        idx = build_method("BU", g)
        wl = generate_queries(g, 100, seed=4)
        assert measure_queries(idx, wl) > 0

    @pytest.mark.parametrize("name", [m for m in sorted(METHODS) if METHODS[m].dynamic])
    def test_measure_updates_round_trip(self, name, g):
        idx = build_method(name, g)
        wl = generate_updates(g, 8, seed=5)
        scratch = g.copy()
        timings = measure_updates(idx, scratch, wl)
        assert timings.operations == 8
        assert timings.avg_delete_seconds >= 0
        assert timings.avg_insert_seconds >= 0
        assert scratch == g  # input graph untouched
        # After delete + reinsert the index answers like the original graph.
        for s, t in generate_queries(g, 50, seed=6):
            assert idx.query(s, t) == bidirectional_reachable(g, s, t)

    def test_record_series(self, g):
        idx = build_method("Dagger", g)
        wl = generate_updates(g, 5, seed=7)
        timings = measure_updates(idx, g, wl, record_series=True)
        assert len(timings.delete_seconds) == 5
        assert len(timings.insert_seconds) == 5
