"""Tests for workload generation."""

import pytest

from repro.bench.workloads import generate_queries, generate_updates
from repro.errors import WorkloadError
from repro.graph.dag import topological_rank
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag


@pytest.fixture
def g():
    return random_dag(50, 200, seed=1)


class TestQueries:
    def test_count(self, g):
        wl = generate_queries(g, 100, seed=0)
        assert len(wl) == 100
        assert len(list(wl)) == 100

    def test_topo_aware_orientation(self, g):
        wl = generate_queries(g, 200, mode="topo-aware", seed=1)
        rank = topological_rank(g)
        for s, t in wl:
            assert rank[s] <= rank[t]

    def test_uniform_mode(self, g):
        wl = generate_queries(g, 200, mode="uniform", seed=2)
        rank = topological_rank(g)
        # Unconstrained pairs go against the rank at least sometimes.
        assert any(rank[s] > rank[t] for s, t in wl)

    def test_deterministic(self, g):
        assert generate_queries(g, 50, seed=3).pairs == generate_queries(
            g, 50, seed=3
        ).pairs

    def test_bad_inputs(self, g):
        with pytest.raises(WorkloadError):
            generate_queries(g, 0)
        with pytest.raises(WorkloadError):
            generate_queries(DiGraph(), 5)
        with pytest.raises(WorkloadError):
            generate_queries(g, 5, mode="sideways")


class TestUpdates:
    def test_distinct_victims(self, g):
        wl = generate_updates(g, 30, seed=0)
        assert len(wl) == 30
        assert len(set(wl.victims)) == 30
        assert all(v in g for v in wl.victims)

    def test_bad_inputs(self, g):
        with pytest.raises(WorkloadError):
            generate_updates(g, 0)
        with pytest.raises(WorkloadError):
            generate_updates(g, g.num_vertices + 1)

    def test_deterministic(self, g):
        assert generate_updates(g, 10, seed=4).victims == generate_updates(
            g, 10, seed=4
        ).victims
