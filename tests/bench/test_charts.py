"""Tests for ASCII bar-chart rendering."""

import pytest

from repro.bench.charts import render_bar_chart
from repro.bench.experiments import ExperimentResult
from repro.bench.tables import format_bytes, format_millis


@pytest.fixture
def result():
    res = ExperimentResult(
        name="demo",
        title="Demo figure",
        headers=["dataset", "BU", "TF"],
        formatters={1: format_millis, 2: format_millis},
    )
    res.rows = [["alpha", 0.001, 0.1], ["beta", 0.002, 0.05]]
    return res


class TestRendering:
    def test_contains_all_cells(self, result):
        chart = render_bar_chart(result)
        for token in ["alpha", "beta", "BU", "TF", "1ms", "100ms"]:
            assert token in chart

    def test_log_scale_used_for_wide_range(self, result):
        assert "log scale" in render_bar_chart(result)

    def test_linear_scale_for_narrow_range(self, result):
        result.rows = [["alpha", 1.0, 2.0]]
        assert "linear scale" in render_bar_chart(result)

    def test_larger_value_gets_longer_bar(self, result):
        chart = render_bar_chart(result)
        lines = [l for l in chart.splitlines() if "|" in l]
        bu_alpha = lines[0].count("■")
        tf_alpha = lines[1].count("■")
        assert tf_alpha > bu_alpha

    def test_dataset_subset(self, result):
        chart = render_bar_chart(result, datasets=["beta"])
        assert "beta" in chart and "alpha" not in chart

    def test_zero_values_render_empty_bar(self, result):
        result.rows = [["alpha", 0, 5.0]]
        chart = render_bar_chart(result)
        assert "|" in chart  # no crash; zero row renders

    def test_non_numeric_cells_pass_through(self, result):
        result.rows = [["alpha", "n/a", 0.5]]
        chart = render_bar_chart(result)
        assert "n/a" in chart

    def test_no_numeric_data(self, result):
        result.rows = [["alpha", "x", "y"]]
        assert "no numeric data" in render_bar_chart(result)

    def test_byte_formatter_detected(self):
        res = ExperimentResult(
            name="sizes", title="Sizes", headers=["dataset", "BU"],
            formatters={1: format_bytes},
        )
        res.rows = [["alpha", 2048]]
        assert "2.0KiB" in render_bar_chart(res)

    def test_custom_width(self, result):
        chart = render_bar_chart(result, width=10)
        for line in chart.splitlines():
            if "■" in line:
                assert line.count("■") <= 10
