"""Smoke + shape tests for the per-figure experiment drivers.

Run at tiny scale (a couple of datasets, few hundred vertices) so the whole
file stays fast; the real numbers come from ``benchmarks/``.
"""


from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    fig2_insertion,
    fig3_query_dynamic,
    fig4_deletion,
    fig5_index_size,
    fig6_preprocessing,
    fig7_query_static,
    table3_datasets,
    table4_label_reduction,
)

SMALL = dict(datasets=["RG5", "wiki"], num_vertices=250)


class TestTable3:
    def test_rows_and_render(self):
        res = table3_datasets(**SMALL)
        assert [r[0] for r in res.rows] == ["RG5", "wiki"]
        assert res.cell("RG5", "|V|") == 250
        text = res.render()
        assert "Table 3" in text and "RG5" in text

    def test_full_registry(self):
        res = table3_datasets(num_vertices=100)
        assert len(res.rows) == 15


class TestDynamicFigures:
    def test_fig2_shape(self):
        res = fig2_insertion(**SMALL, num_updates=5)
        assert res.headers == ["dataset", "BU", "BL", "Dagger"]
        assert all(isinstance(row[1], float) for row in res.rows)
        assert "Figure 2" in res.render()

    def test_fig4_shape(self):
        res = fig4_deletion(**SMALL, num_updates=5)
        assert res.headers[0] == "dataset"
        assert len(res.rows) == 2

    def test_fig3_includes_bfs(self):
        res = fig3_query_dynamic(**SMALL, num_queries=50, num_updates=5)
        assert res.headers == ["dataset", "BU", "BL", "Dagger", "BFS"]
        for row in res.rows:
            assert all(v > 0 for v in row[1:])


class TestStaticFigures:
    def test_fig5_shape(self):
        res = fig5_index_size(**SMALL)
        assert res.headers == ["dataset", "BU", "BL", "HL", "DL", "TF", "Dagger"]
        assert all(v >= 0 for row in res.rows for v in row[1:])

    def test_fig6_positive_times(self):
        res = fig6_preprocessing(**SMALL)
        assert all(v > 0 for row in res.rows for v in row[1:])

    def test_fig7_queries(self):
        res = fig7_query_static(**SMALL, num_queries=50)
        assert all(v > 0 for row in res.rows for v in row[1:])

    def test_method_subset(self):
        res = fig5_index_size(datasets=["RG5"], num_vertices=200, methods=("BU", "TF"))
        assert res.headers == ["dataset", "BU", "TF"]


class TestTable4:
    def test_shape_and_nonnegative(self):
        res = table4_label_reduction(datasets=["RG5"], num_vertices=200)
        assert res.headers == [
            "dataset", "DL ΔL", "DL ΔL/|L|", "DL time", "TF ΔL", "TF ΔL/|L|", "TF time",
        ]
        row = res.rows[0]
        assert row[1] >= 0 and 0 <= row[2] <= 1
        assert "Table 4" in res.render()


class TestRegistryCompleteness:
    def test_all_eight_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table4",
        }
