"""Tests for the update-trace format and replayer."""

import pytest

from repro.bench.trace import (
    TraceOp,
    format_trace,
    generate_trace,
    parse_trace,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.core.index import ReachabilityIndex
from repro.baselines.dagger import DaggerIndex
from repro.baselines.search import BFSBaseline
from repro.errors import WorkloadError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.traversal import bidirectional_reachable


SAMPLE = """\
# tol-trace v1
addv 17 in=3,5 out=9
adde 2 9
query 3 9
delv 5
dele 2 9
"""


class TestParseFormat:
    def test_parse_sample(self):
        trace = parse_trace(SAMPLE)
        assert len(trace) == 5
        assert trace.ops[0] == TraceOp("addv", vertex=17, ins=(3, 5), outs=(9,))
        assert trace.ops[2] == TraceOp("query", tail=3, head=9)
        assert trace.counts()["adde"] == 1

    def test_round_trip(self):
        trace = parse_trace(SAMPLE)
        assert parse_trace(format_trace(trace)).ops == trace.ops

    def test_string_vertices(self):
        trace = parse_trace("addv alice out=bob\n")
        assert trace.ops[0].vertex == "alice"
        assert trace.ops[0].outs == ("bob",)

    def test_unknown_op_rejected(self):
        with pytest.raises(WorkloadError):
            parse_trace("frobnicate 1 2\n")

    def test_missing_args_rejected(self):
        with pytest.raises(WorkloadError):
            parse_trace("adde 1\n")

    def test_bad_addv_argument_rejected(self):
        with pytest.raises(WorkloadError):
            parse_trace("addv 1 sideways=2\n")

    def test_file_round_trip(self, tmp_path):
        trace = parse_trace(SAMPLE)
        path = tmp_path / "ops.trace"
        write_trace(trace, path)
        assert read_trace(path).ops == trace.ops


class TestGenerate:
    def test_counts_and_determinism(self):
        g = random_dag(15, 40, seed=0)
        a = generate_trace(g, 60, seed=1)
        b = generate_trace(g, 60, seed=1)
        assert len(a) == 60
        assert a.ops == b.ops
        counts = a.counts()
        assert counts["query"] > 0
        assert sum(counts.values()) == 60

    def test_vertex_namespace(self):
        g = random_dag(5, 5, seed=2)
        trace = generate_trace(g, 40, seed=3, vertex_namespace="new-")
        added = [op.vertex for op in trace if op.kind == "addv"]
        assert added and all(str(v).startswith("new-") for v in added)

    def test_invalid_query_fraction(self):
        with pytest.raises(WorkloadError):
            generate_trace(DiGraph(vertices=[1]), 5, query_fraction=2.0)


class TestReplay:
    def test_replay_matches_ground_truth(self):
        g = random_dag(12, 30, seed=4)
        trace = generate_trace(g, 80, seed=5)
        index = ReachabilityIndex(g)
        report = replay_trace(index, trace)
        # Recompute expected answers by replaying on a plain graph.
        live = g.copy()
        expected = []
        for op in trace:
            if op.kind == "addv":
                live.add_vertex(op.vertex)
                for u in op.ins:
                    live.add_edge(u, op.vertex)
                for w in op.outs:
                    live.add_edge(op.vertex, w)
            elif op.kind == "delv":
                live.remove_vertex(op.vertex)
            elif op.kind == "adde":
                live.add_edge(op.tail, op.head)
            elif op.kind == "dele":
                live.remove_edge(op.tail, op.head)
            else:
                expected.append(bidirectional_reachable(live, op.tail, op.head))
        assert report.answers == expected
        assert report.operations == 80
        assert report.total_seconds > 0

    def test_replay_against_dagger(self):
        g = random_dag(10, 20, seed=6)
        trace = generate_trace(g, 50, seed=7)
        a = replay_trace(ReachabilityIndex(g), trace)
        b = replay_trace(DaggerIndex(g), trace)
        assert a.answers == b.answers

    def test_edge_ops_require_capable_index(self):
        class VertexOnlyIndex:
            def insert_vertex(self, v, ins=(), outs=()):
                pass

            def delete_vertex(self, v):
                pass

            def query(self, s, t):
                return False

        with pytest.raises(WorkloadError):
            replay_trace(VertexOnlyIndex(), parse_trace("adde 0 1\n"))
        with pytest.raises(WorkloadError):
            replay_trace(VertexOnlyIndex(), parse_trace("dele 0 1\n"))

    def test_bfs_baseline_handles_edge_ops(self):
        g = random_dag(8, 10, seed=8)
        trace = generate_trace(g, 40, seed=9)
        report = replay_trace(BFSBaseline(g), trace)
        truth = replay_trace(ReachabilityIndex(g), trace)
        assert report.answers == truth.answers

    def test_acyclic_trace_replays_on_dag_only_index(self):
        from repro.core.index import TOLIndex

        g = random_dag(10, 20, seed=10)
        trace = generate_trace(g, 60, seed=11, acyclic=True)

        class TolVertexEdgeAdapter:
            def __init__(self, graph):
                self.idx = TOLIndex.build(graph)

            def insert_vertex(self, v, ins=(), outs=()):
                self.idx.insert_vertex(v, ins, outs)

            def delete_vertex(self, v):
                self.idx.delete_vertex(v)

            def insert_edge(self, t, h):
                self.idx.insert_edge(t, h)

            def delete_edge(self, t, h):
                self.idx.delete_edge(t, h)

            def query(self, s, t):
                return self.idx.query(s, t)

        report = replay_trace(TolVertexEdgeAdapter(g), trace)
        truth = replay_trace(ReachabilityIndex(g), trace)
        assert report.answers == truth.answers
