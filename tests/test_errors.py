"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_graph_errors(self):
        for cls in (
            errors.VertexNotFoundError,
            errors.VertexExistsError,
            errors.EdgeNotFoundError,
            errors.EdgeExistsError,
            errors.NotADagError,
        ):
            assert issubclass(cls, errors.GraphError)

    def test_lookup_errors_are_keyerrors(self):
        # Missing-thing errors double as KeyError so dict-style call sites
        # can catch them uniformly.
        assert issubclass(errors.VertexNotFoundError, KeyError)
        assert issubclass(errors.EdgeNotFoundError, KeyError)
        assert issubclass(errors.UnknownVertexError, KeyError)

    def test_unknown_vertex_error(self):
        # Also an IndexStateError, so pre-existing broad handlers keep
        # catching it.
        assert issubclass(errors.UnknownVertexError, errors.IndexStateError)
        err = errors.UnknownVertexError("ghost")
        assert err.vertex == "ghost"
        assert "ghost" in str(err)

    def test_vertex_not_found_message(self):
        err = errors.VertexNotFoundError("ghost")
        assert "ghost" in str(err)
        assert err.vertex == "ghost"

    def test_edge_errors_carry_endpoints(self):
        err = errors.EdgeNotFoundError(1, 2)
        assert err.tail == 1 and err.head == 2
        assert "1" in str(err) and "2" in str(err)
        err2 = errors.EdgeExistsError("a", "b")
        assert err2.tail == "a" and err2.head == "b"

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("x")
        with pytest.raises(errors.ReproError):
            raise errors.OrderError("x")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_string(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_subpackage_exports_resolve(self):
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.graph
        import repro.service

        for pkg in (repro.core, repro.graph, repro.baselines, repro.bench,
                    repro.service):
            for name in pkg.__all__:
                assert getattr(pkg, name) is not None, (pkg.__name__, name)

    def test_headline_workflow_via_top_level_names_only(self):
        g = repro.DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        index = repro.ReachabilityIndex(g)
        assert index.query(1, 4)
        stats = repro.labeling_stats(index.tol.labeling)
        assert stats.num_vertices == index.condensation.dag.num_vertices
