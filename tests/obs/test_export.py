"""Tests for the Prometheus/JSON exporters, including a golden file."""

import json
import math
from pathlib import Path

import pytest

from repro.obs.export import _fmt, _sanitize, render_json, render_prometheus, write_metrics
from repro.obs.registry import MetricRegistry

GOLDEN = Path(__file__).parent / "golden_metrics.prom"


def golden_registry() -> MetricRegistry:
    """One of every instrument kind, with hand-picked deterministic values."""
    reg = MetricRegistry()
    reg.counter("service.queries").incr(5)
    reg.counter("event.tol.reduction.round").incr(3)
    reg.gauge("index.size").set(42)
    reg.gauge("cache.hit-rate").set(0.5)
    reg.register_callback("service.epoch", lambda: 7)
    reg.register_callback("cache.pending", lambda: None)  # omitted: no data
    reg.register_callback("service.note", lambda: "warm")  # omitted: non-numeric
    h = reg.histogram("span.tol.insert")
    for v in (1e-6, 3e-6, 100.0):  # first bucket, third bucket, overflow
        h.record(v)
    s = reg.stats("span.tol.insert.labels_added")
    s.record(2)
    s.record(10)
    return reg


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert _sanitize("span.tol.insert") == "span_tol_insert"
        assert _sanitize("cache.hit-rate") == "cache_hit_rate"

    def test_leading_digit_prefixed(self):
        assert _sanitize("95th.latency") == "_95th_latency"


class TestFmt:
    def test_values(self):
        assert _fmt(True) == "1"
        assert _fmt(7) == "7"
        assert _fmt(0.5) == "0.5"
        assert _fmt(float("inf")) == "+Inf"
        assert _fmt(float("-inf")) == "-Inf"
        assert _fmt(float("nan")) == "NaN"

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            _fmt("nope")


class TestPrometheusRendering:
    def test_matches_golden_file(self):
        assert render_prometheus(golden_registry()) == GOLDEN.read_text()

    def test_counters_get_total_suffix(self):
        text = render_prometheus(golden_registry())
        assert "# TYPE service_queries_total counter" in text
        assert "\nservice_queries_total 5\n" in text

    def test_none_and_non_numeric_callbacks_omitted(self):
        text = render_prometheus(golden_registry())
        assert "cache_pending" not in text
        assert "service_note" not in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = render_prometheus(golden_registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("span_tol_insert_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1] == 'span_tol_insert_seconds_bucket{le="+Inf"} 3'
        assert "span_tol_insert_seconds_count 3" in text

    def test_empty_registry_renders_empty_document(self):
        assert render_prometheus(MetricRegistry()) == "\n"

    def test_deterministic(self):
        a = render_prometheus(golden_registry())
        b = render_prometheus(golden_registry())
        assert a == b


class TestJsonRendering:
    def test_round_trips_and_matches_snapshot(self):
        reg = golden_registry()
        doc = json.loads(render_json(reg))
        assert doc["counters"]["service.queries"] == 5
        assert doc["gauges"]["service.epoch"] == 7
        assert doc["gauges"]["cache.pending"] is None  # JSON keeps the null
        assert doc["histograms"]["span.tol.insert"]["count"] == 3
        assert math.isclose(
            doc["stats"]["span.tol.insert.labels_added"]["mean"], 6.0
        )


class TestWriteMetrics:
    def test_extension_selects_format(self, tmp_path):
        reg = golden_registry()
        jpath = tmp_path / "m.json"
        ppath = tmp_path / "m.prom"
        assert write_metrics(reg, jpath) == "json"
        assert write_metrics(reg, ppath) == "prometheus"
        json.loads(jpath.read_text())  # valid JSON document
        assert ppath.read_text() == GOLDEN.read_text()
