"""Unit tests for the slow-query log: gating, schema, reader, aggregator."""

import json

import pytest

from repro.obs.slowlog import SlowQueryLog, aggregate_slowlog, read_slowlog


class TestGating:
    def test_above_threshold_always_written(self, tmp_path):
        with SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=10.0) as log:
            assert log.record(trace="aa", dur_ms=10.0)  # at threshold: slow
            assert log.record(trace="bb", dur_ms=99.0)
        records = read_slowlog(tmp_path / "slow.jsonl")
        assert [r["trace"] for r in records] == ["aa", "bb"]
        assert all(r["slow"] for r in records)

    def test_below_threshold_dropped_without_sampling(self, tmp_path):
        with SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=10.0) as log:
            assert not log.record(trace="aa", dur_ms=9.9)
            assert log.stats()["seen"] == 1
            assert log.stats()["written"] == 0
        assert read_slowlog(tmp_path / "slow.jsonl") == []

    def test_sampling_admits_a_baseline(self, tmp_path):
        log = SlowQueryLog(
            tmp_path / "slow.jsonl",
            threshold_ms=1000.0,
            sample_rate=0.5,
            seed=7,
        )
        with log:
            written = sum(
                log.record(trace=f"{i:02x}", dur_ms=1.0) for i in range(200)
            )
        # Seeded RNG: deterministic, and close to the nominal rate.
        assert written == log.stats()["sampled"]
        assert 60 <= written <= 140
        assert all(not r["slow"] for r in read_slowlog(log.path))

    def test_sample_rate_one_writes_everything(self, tmp_path):
        with SlowQueryLog(
            tmp_path / "s.jsonl", threshold_ms=1000.0, sample_rate=1.0
        ) as log:
            assert log.record(trace="aa", dur_ms=0.1)

    def test_threshold_zero_logs_every_request(self, tmp_path):
        with SlowQueryLog(tmp_path / "s.jsonl", threshold_ms=0.0) as log:
            assert log.record(trace="aa", dur_ms=0.0)

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SlowQueryLog(tmp_path / "s.jsonl", threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(tmp_path / "s.jsonl", sample_rate=1.5)


class TestSchema:
    def test_record_carries_full_breakdown(self, tmp_path):
        with SlowQueryLog(tmp_path / "s.jsonl", threshold_ms=0.0) as log:
            log.record(
                trace="feedbeef",
                dur_ms=83.21234,
                stages={"admission_ms": 0.123456, "lock_ms": 38.5,
                        "cache_hits": 3, "degraded": False},
                pairs=16,
                pair=("a", "b"),
                epoch=412,
                outcome="ok",
            )
        [rec] = read_slowlog(tmp_path / "s.jsonl")
        assert rec["trace"] == "feedbeef"
        assert rec["dur_ms"] == 83.2123  # rounded to 4dp
        assert rec["pair"] == ["a", "b"]  # tuples become JSON arrays
        assert rec["epoch"] == 412
        assert rec["outcome"] == "ok"
        assert rec["stages"]["admission_ms"] == 0.1235
        assert rec["stages"]["cache_hits"] == 3
        assert rec["stages"]["degraded"] is False
        assert "ts" in rec

    def test_append_mode_survives_reopen(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with SlowQueryLog(path, threshold_ms=0.0) as log:
            log.record(trace="aa", dur_ms=1.0)
        with SlowQueryLog(path, threshold_ms=0.0) as log:
            log.record(trace="bb", dur_ms=2.0)
        assert [r["trace"] for r in read_slowlog(path)] == ["aa", "bb"]

    def test_record_after_close_is_a_noop(self, tmp_path):
        log = SlowQueryLog(tmp_path / "s.jsonl", threshold_ms=0.0)
        log.close()
        assert not log.record(trace="aa", dur_ms=99.0)
        log.close()  # idempotent


class TestReader:
    def test_tail_keeps_the_newest(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with SlowQueryLog(path, threshold_ms=0.0) as log:
            for i in range(10):
                log.record(trace=f"{i:02x}", dur_ms=float(i))
        tail = read_slowlog(path, tail=3)
        assert [r["trace"] for r in tail] == ["07", "08", "09"]
        assert read_slowlog(path, tail=0) == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with SlowQueryLog(path, threshold_ms=0.0) as log:
            log.record(trace="aa", dur_ms=1.0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"trace": "torn-mid-wri\n')  # crash mid-write
        with SlowQueryLog(path, threshold_ms=0.0) as log:
            log.record(trace="bb", dur_ms=2.0)
        assert [r["trace"] for r in read_slowlog(path)] == ["aa", "bb"]


class TestAggregate:
    def _records(self):
        return [
            {"trace": "aa", "dur_ms": 10.0, "slow": True, "outcome": "ok",
             "stages": {"lock_ms": 4.0, "probe_ms": 6.0, "degraded": False}},
            {"trace": "bb", "dur_ms": 30.0, "slow": True, "outcome": "ok",
             "stages": {"lock_ms": 8.0, "probe_ms": 22.0, "degraded": False}},
            {"trace": "cc", "dur_ms": 1.0, "slow": False, "outcome": "shed"},
        ]

    def test_summary_shape(self):
        agg = aggregate_slowlog(self._records())
        assert agg["count"] == 3
        assert agg["slow"] == 2
        assert agg["by_outcome"] == {"ok": 2, "shed": 1}
        assert agg["dur_ms"]["max"] == 30.0
        assert agg["dur_ms"]["p50"] == 10.0
        assert agg["stage_means_ms"] == {"lock_ms": 6.0, "probe_ms": 14.0}
        # Booleans inside stages must not pollute the numeric means.
        assert "degraded" not in agg["stage_means_ms"]
        assert [t["trace"] for t in agg["slowest_traces"]] == [
            "bb", "aa", "cc"
        ]

    def test_empty_log_aggregates_cleanly(self):
        agg = aggregate_slowlog([])
        assert agg["count"] == 0
        assert agg["dur_ms"]["mean"] == 0.0
        assert agg["slowest_traces"] == []

    def test_aggregate_is_json_safe(self):
        json.dumps(aggregate_slowlog(self._records()))
