"""ScopedMetrics prefix semantics and registry snapshot-vs-mutation safety.

Two hazards pinned here: (1) two scopes on one registry must compose —
and a short name that would collide with another scope's *instrument
kind* must fail loudly at bind time, not shadow silently; (2) taking a
registry snapshot while writer threads mutate every instrument kind must
never raise or tear an individual instrument's summary.
"""

import threading

import pytest

from repro.obs.registry import MetricRegistry
from repro.service.metrics import ScopedMetrics


class TestPrefixes:
    def test_prefix_must_be_dotted(self):
        with pytest.raises(ValueError):
            ScopedMetrics(prefix="service")

    def test_two_scopes_share_one_registry_without_clashes(self):
        registry = MetricRegistry()
        service = ScopedMetrics(registry, prefix="service.")
        net = ScopedMetrics(registry, prefix="net.")
        service.incr("queries", 3)
        net.incr("queries", 5)  # same short name, different namespace
        assert service.counter("queries") == 3
        assert net.counter("queries") == 5
        counters = registry.snapshot()["counters"]
        assert counters["service.queries"] == 3
        assert counters["net.queries"] == 5

    def test_scoped_counters_strips_only_own_prefix(self):
        registry = MetricRegistry()
        service = ScopedMetrics(registry, prefix="service.")
        net = ScopedMetrics(registry, prefix="net.")
        service.incr("queries")
        net.incr("shed")
        assert service.scoped_counters() == {"queries": 1}
        assert net.scoped_counters() == {"shed": 1}

    def test_nested_prefix_is_not_a_collision(self):
        registry = MetricRegistry()
        outer = ScopedMetrics(registry, prefix="service.")
        inner = ScopedMetrics(registry, prefix="service.cache.")
        outer.incr("cache.hits")  # fully-qualified: service.cache.hits
        inner.incr("hits", 2)  # the same registry name, on purpose
        assert registry.counter("service.cache.hits").value == 3

    def test_same_name_different_kind_rejected(self):
        registry = MetricRegistry()
        scope = ScopedMetrics(registry, prefix="service.")
        scope.incr("query_latency")  # binds a counter
        with pytest.raises(ValueError, match="already bound to a counter"):
            scope.histogram("query_latency")

    def test_cross_scope_kind_collision_on_shared_registry(self):
        registry = MetricRegistry()
        a = ScopedMetrics(registry, prefix="svc.")
        b = ScopedMetrics(registry, prefix="svc.")  # misconfigured twin
        a.histogram("latency")
        with pytest.raises(ValueError, match="already bound to a histogram"):
            b.stats("latency")

    def test_callback_cannot_shadow_instrument(self):
        registry = MetricRegistry()
        scope = ScopedMetrics(registry, prefix="service.")
        scope.incr("queries")
        with pytest.raises(ValueError):
            registry.register_callback("service.queries", lambda: 1)


class TestSnapshotVsMutation:
    def test_concurrent_snapshots_never_tear(self):
        registry = MetricRegistry()
        scope = ScopedMetrics(registry, prefix="svc.")
        stop = threading.Event()
        errors = []

        def writer(seed):
            i = 0
            while not stop.is_set():
                scope.incr("ops")
                scope.histogram("latency").record((seed + i % 7) * 1e-4)
                scope.stats("batch").record(i % 31)
                registry.gauge(f"w{seed}.depth").set(i)
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    snap = registry.snapshot()
                    hist = snap["histograms"].get("svc.latency")
                    if hist and hist["count"]:
                        # Per-instrument consistency: the summary must be
                        # internally ordered even while records land.
                        assert hist["p50"] <= hist["p95"] <= hist["p99"]
                        assert hist["max"] >= hist["p99"]
                    stats = snap["stats"].get("svc.batch")
                    if stats and stats["count"]:
                        assert stats["min"] <= stats["mean"] <= stats["max"]
                    assert snap["counters"].get("svc.ops", 0) >= 0
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in range(3)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop.wait(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert registry.counter("svc.ops").value > 0

    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricRegistry()
        scope = ScopedMetrics(registry, prefix="svc.")
        seen = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            seen.append(scope.histogram("latency"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(h) for h in seen}) == 1

    def test_snapshot_during_callback_mutation(self):
        # Gauge callbacks run outside the registry lock; a callback that
        # itself touches the registry must not deadlock the snapshot.
        registry = MetricRegistry()
        registry.register_callback(
            "svc.depth", lambda: registry.counter("svc.ops").value
        )
        registry.incr("svc.ops", 7)
        assert registry.snapshot()["gauges"]["svc.depth"] == 7
