"""Unit tests for the flight recorder: ring, sampler, dump formats."""

import json

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricRegistry


def make_recorder(tmp_path=None, **kwargs):
    registry = MetricRegistry()
    registry.incr("test.counter", 3)
    return FlightRecorder(
        registry,
        dump_dir=None if tmp_path is None else tmp_path / "flights",
        **kwargs,
    )


class TestRing:
    def test_tick_captures_registry_state(self):
        fr = make_recorder()
        entry = fr.tick()
        assert entry["kind"] == "snapshot"
        assert entry["metrics"]["counters"]["test.counter"] == 3
        assert fr.ticks == 1
        assert fr.snapshots() == [entry]

    def test_capacity_bounds_the_ring_oldest_first_out(self):
        fr = make_recorder(capacity=4)
        for i in range(10):
            fr.registry.incr("tick.seq")
            fr.tick()
        ring = fr.snapshots()
        assert len(ring) == 4
        seqs = [e["metrics"]["counters"]["tick.seq"] for e in ring]
        assert seqs == [7, 8, 9, 10]  # oldest evicted, order preserved
        assert fr.ticks == 10  # the counter keeps the true total

    def test_markers_interleave_with_snapshots(self):
        fr = make_recorder()
        fr.tick()
        fr.note("quarantine", kind="insert_edge", trace="aa")
        fr.tick()
        kinds = [e["kind"] for e in fr.snapshots()]
        assert kinds == ["snapshot", "marker", "snapshot"]
        marker = fr.snapshots()[1]
        assert marker["event"] == "quarantine"
        assert marker["attrs"] == {"kind": "insert_edge", "trace": "aa"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_recorder(capacity=0)
        with pytest.raises(ValueError):
            make_recorder(interval=0.0)


class TestSampler:
    def test_background_thread_ticks(self):
        fr = make_recorder(interval=0.01)
        with fr:
            deadline = 200
            while fr.ticks == 0 and deadline:
                deadline -= 1
                fr._stop.wait(0.01)
        assert fr.ticks > 0
        assert not fr.stats()["running"]

    def test_start_is_idempotent(self):
        fr = make_recorder(interval=60.0)
        fr.start()
        first = fr._thread
        fr.start()
        assert fr._thread is first
        fr.stop()

    def test_ring_readable_after_stop(self):
        fr = make_recorder()
        fr.tick()
        fr.stop()  # never started: harmless
        assert len(fr.snapshots()) == 1


class TestDump:
    def _read_jsonl(self, path):
        with open(path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh]

    def test_dump_header_then_entries_oldest_first(self, tmp_path):
        fr = make_recorder()
        fr.tick()
        fr.note("degraded", reason="audit_failure")
        out = fr.dump(tmp_path / "d" / "timeline.jsonl", "degraded")
        lines = self._read_jsonl(out)
        header = lines[0]
        assert header["kind"] == "dump"
        assert header["reason"] == "degraded"
        # dump() takes one extra snapshot for the dump moment itself.
        assert header["entries"] == 3
        assert [e["kind"] for e in lines[1:]] == [
            "snapshot", "marker", "snapshot"
        ]
        assert fr.dumps == 1

    def test_auto_dump_names_and_counts_files(self, tmp_path):
        fr = make_recorder(tmp_path)
        first = fr.auto_dump("degraded", reason="operator")
        second = fr.auto_dump("tol.audit", mismatch=1)
        assert first.name == "flight-degraded-0001.jsonl"
        assert second.name == "flight-tol-audit-0002.jsonl"  # dots sanitized
        # The trigger marker lands in the ring before the dump snapshot.
        events = [e for e in self._read_jsonl(first)[1:] if e["kind"] == "marker"]
        assert events[0]["event"] == "degraded"
        assert events[0]["attrs"] == {"reason": "operator"}

    def test_auto_dump_without_dir_records_marker_only(self):
        fr = make_recorder()
        assert fr.auto_dump("degraded") is None
        assert [e["kind"] for e in fr.snapshots()] == ["marker"]
        assert fr.dumps == 0

    def test_auto_dump_swallows_os_errors(self, tmp_path):
        blocker = tmp_path / "flights"
        blocker.write_text("not a directory")
        fr = FlightRecorder(MetricRegistry(), dump_dir=blocker)
        assert fr.auto_dump("degraded") is None  # must not raise

    def test_stats_shape(self, tmp_path):
        fr = make_recorder(tmp_path, capacity=8, interval=2.0)
        fr.tick()
        fr.auto_dump("sigquit")
        stats = fr.stats()
        assert stats["capacity"] == 8
        assert stats["interval_s"] == 2.0
        assert stats["depth"] == 3  # tick + marker + dump snapshot
        assert stats["dumps"] == 1
        assert stats["running"] is False
