"""Tests for the span-tracing layer: no-op path, recording, nesting, sink."""

import io
import json
import threading

import pytest

from repro.obs import trace
from repro.obs.registry import MetricRegistry
from repro.obs.trace import JsonlSink


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


class TestDisabledPath:
    def test_span_returns_shared_falsy_noop(self):
        a = trace.span("x")
        b = trace.span("y", ignored=1)
        assert a is b  # no allocation on the hot path
        assert not a
        with a as sp:
            sp.set("k", 1)  # silently discarded
            sp.incr("k")
        assert not trace.active()

    def test_event_is_a_no_op(self):
        trace.event("x", k=1)  # must not raise, must not require a registry

    def test_noop_swallows_nothing(self):
        # The no-op context manager must not suppress exceptions.
        with pytest.raises(RuntimeError):
            with trace.span("x"):
                raise RuntimeError("boom")


class TestEnabledSpans:
    def test_span_is_truthy_and_records_into_registry(self):
        reg = trace.enable()
        with trace.span("op", n=3) as sp:
            assert sp
            sp.set("m", 2.5)
        snap = reg.snapshot()
        assert snap["histograms"]["span.op"]["count"] == 1
        assert snap["stats"]["span.op.n"]["max"] == 3
        assert snap["stats"]["span.op.m"]["max"] == 2.5

    def test_non_numeric_and_bool_attrs_skip_stats(self):
        reg = trace.enable()
        with trace.span("op", vertex="v1", flag=True):
            pass
        snap = reg.snapshot()
        assert "span.op.vertex" not in snap["stats"]
        assert "span.op.flag" not in snap["stats"]

    def test_exception_is_recorded_and_propagates(self):
        reg = trace.enable()
        with pytest.raises(ValueError):
            with trace.span("op"):
                raise ValueError("boom")
        # The span still finished: duration recorded despite the raise.
        assert reg.snapshot()["histograms"]["span.op"]["count"] == 1

    def test_event_bumps_counter_and_stats(self):
        reg = trace.enable()
        trace.event("round", size=10)
        trace.event("round", size=6)
        snap = reg.snapshot()
        assert snap["counters"]["event.round"] == 2
        assert snap["stats"]["event.round.size"]["min"] == 6

    def test_enable_returns_given_registry(self):
        reg = MetricRegistry()
        assert trace.enable(reg) is reg
        assert trace.current_registry() is reg


class TestNesting:
    def test_parent_names_in_sink_records(self):
        buf = io.StringIO()
        trace.enable(sink=JsonlSink(buf))
        with trace.span("outer"):
            with trace.span("inner"):
                trace.event("tick")
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == "outer"
        assert by_name["tick"]["parent"] == "inner"
        # Inner spans close first.
        assert [r["name"] for r in records if r["kind"] == "span"] == [
            "inner",
            "outer",
        ]

    def test_stack_is_per_thread(self):
        buf = io.StringIO()
        trace.enable(sink=JsonlSink(buf))
        seen = {}

        def worker():
            with trace.span("child"):
                pass

        with trace.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        seen = {r["name"]: r["parent"] for r in records}
        # The other thread's span must NOT see this thread's open span.
        assert seen["child"] is None
        assert seen["main-span"] is None


class TestCapture:
    def test_capture_restores_previous_state(self):
        assert not trace.active()
        with trace.capture() as reg:
            assert trace.active()
            assert trace.current_registry() is reg
        assert not trace.active()
        assert trace.current_registry() is None

    def test_capture_nests(self):
        outer = MetricRegistry()
        inner = MetricRegistry()
        with trace.capture(outer):
            with trace.capture(inner):
                with trace.span("op"):
                    pass
            # Back to the outer registry after the inner block.
            assert trace.current_registry() is outer
        assert inner.snapshot()["histograms"]["span.op"]["count"] == 1
        assert "span.op" not in outer.snapshot()["histograms"]


class TestJsonlSink:
    def test_schema_of_span_and_event_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            trace.enable(sink=sink)
            with trace.span("op", vertex="v1", n=2):
                trace.event("tick", k=1)
            trace.disable()
            assert sink.records_written == 2
        lines = path.read_text().splitlines()
        event, span = (json.loads(line) for line in lines)
        assert event["kind"] == "event"
        assert sorted(event) == ["attrs", "kind", "name", "parent", "ts"]
        assert span["kind"] == "span"
        assert sorted(span) == ["attrs", "dur_s", "kind", "name", "parent", "ts"]
        assert span["dur_s"] >= 0
        assert span["attrs"] == {"vertex": "v1", "n": 2}

    def test_non_serializable_attrs_are_stringified(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.write({"attrs": {"obj": object()}})
        record = json.loads(buf.getvalue())
        assert record["attrs"]["obj"].startswith("<object object")

    def test_close_only_closes_owned_files(self, tmp_path):
        buf = io.StringIO()
        JsonlSink(buf).close()
        assert not buf.closed
        path = tmp_path / "x.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert sink._file.closed
