"""Tests for the unified metric registry and its instruments."""

import threading

import pytest

from repro.obs.registry import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricRegistry,
    RunningStats,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.incr()
        c.incr(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().incr(-1)

    def test_concurrent_increments_all_land(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.incr() for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestLatencyHistogram:
    def test_bucket_bounds_are_geometric(self):
        assert BUCKET_BOUNDS[0] == 1e-6
        for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert hi == 2 * lo

    def test_cumulative_buckets_end_with_inf(self):
        h = LatencyHistogram()
        h.record(2e-6)
        h.record(1.0)
        h.record(1e9)  # beyond every bound: overflow bucket
        buckets, count, total = h.cumulative_buckets()
        assert count == 3
        assert total == pytest.approx(2e-6 + 1.0 + 1e9)
        bounds = [b for b, _ in buckets]
        assert bounds[:-1] == list(BUCKET_BOUNDS)
        assert bounds[-1] == float("inf")
        # Cumulative: monotone, final entry counts everything.
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        # The 1e9 observation is only in the +Inf bucket.
        assert counts[-2] == 2

    def test_snapshot_empty(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {
            "count": 0,
            "mean": None,
            "p50": None,
            "p95": None,
            "p99": None,
            "max": None,
        }


class TestRunningStats:
    def test_tracks_extremes(self):
        s = RunningStats()
        for v in (3.0, -1.0, 8.0):
            s.record(v)
        snap = s.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == -1.0
        assert snap["max"] == 8.0
        assert snap["mean"] == pytest.approx(10.0 / 3)


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_rebind_raises(self):
        reg = MetricRegistry()
        reg.counter("service.queries")
        with pytest.raises(ValueError, match="already bound"):
            reg.histogram("service.queries")
        with pytest.raises(ValueError, match="already bound"):
            reg.register_callback("service.queries", lambda: 1)

    def test_callback_rendered_as_gauge_and_replaceable(self):
        reg = MetricRegistry()
        reg.register_callback("cache.hit_rate", lambda: 0.25)
        assert reg.snapshot()["gauges"]["cache.hit_rate"] == 0.25
        reg.register_callback("cache.hit_rate", lambda: 0.75)
        assert reg.snapshot()["gauges"]["cache.hit_rate"] == 0.75

    def test_convenience_mutators(self):
        reg = MetricRegistry()
        reg.incr("ops", 2)
        reg.observe("sizes", 7.0)
        snap = reg.snapshot()
        assert snap["counters"]["ops"] == 2
        assert snap["stats"]["sizes"]["count"] == 1

    def test_snapshot_shape_is_nested(self):
        reg = MetricRegistry()
        reg.counter("c").incr()
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(1e-5)
        reg.stats("s").record(2)
        snap = reg.snapshot()
        assert sorted(snap) == ["counters", "gauges", "histograms", "stats"]
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["stats"]["s"]["max"] == 2

    def test_names_covers_every_kind(self):
        reg = MetricRegistry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        reg.stats("s")
        reg.register_callback("k", lambda: None)
        assert reg.names() == ["c", "g", "h", "k", "s"]
