"""Unit tests for index-health introspection.

``labeling_health`` is pinned against a hand-checkable chain graph;
``collect_health`` and ``bind_health_gauges`` run over a real
:class:`ReachabilityService`, with and without a durability directory.
"""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.obs.health import (
    bind_health_gauges,
    collect_health,
    labeling_health,
    render_health,
)
from repro.obs.registry import MetricRegistry
from repro.service.durability import DurabilityManager
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp


def chain(n=6):
    return DiGraph(edges=[(i, i + 1) for i in range(n - 1)])


class TestLabelingHealth:
    def test_distribution_and_total(self):
        service = ReachabilityService(chain())
        health = labeling_health(service._index.tol.labeling)
        labels = health["labels"]
        for side in ("in", "out"):
            assert set(labels[side]) == {"mean", "p50", "p95", "max"}
            assert labels[side]["max"] >= labels[side]["p95"] >= 0
        # A 6-chain is fully reachable end to end: pruned labels are
        # sparse but never empty overall.
        assert health["total_labels"] > 0
        n = chain().num_vertices
        assert labels["in"]["mean"] <= labels["in"]["max"]
        assert health["total_labels"] <= 2 * n * n  # trivial upper bound

    def test_decile_coverage_sums_to_one(self):
        service = ReachabilityService(random_dag(60, 180, seed=3))
        health = labeling_health(service._index.tol.labeling)
        coverage = health["order"]["decile_coverage"]
        assert len(coverage) == 10
        assert sum(coverage) == pytest.approx(1.0, abs=1e-4)
        assert all(c >= 0.0 for c in coverage)

    def test_quality_in_unit_interval_and_front_loaded(self):
        service = ReachabilityService(random_dag(60, 180, seed=3))
        health = labeling_health(service._index.tol.labeling)
        quality = health["order"]["quality"]
        assert 0.0 <= quality <= 1.0
        # TOL's whole point: labels reference top-ranked hubs, so a
        # butterfly order must beat the uniform-reference score of 0.5.
        assert quality > 0.5

    def test_empty_labeling(self):
        service = ReachabilityService(DiGraph())
        health = labeling_health(service._index.tol.labeling)
        assert health["total_labels"] == 0
        assert health["order"]["quality"] == 0.0
        assert health["order"]["decile_coverage"] == [0.0] * 10
        assert health["labels"]["in"]["mean"] == 0.0


class TestCollectHealth:
    def test_payload_without_durability(self):
        service = ReachabilityService(chain(), cache_size=16)
        payload = collect_health(service)
        assert payload["epoch"] == 0
        assert payload["degraded"] is False
        assert payload["quarantine_depth"] == 0
        assert payload["wal"] is None
        index = payload["index"]
        assert index["num_vertices"] == 6
        assert index["num_edges"] == 5
        assert "stale" not in index
        # Scratch is lazy: None on a read-only index, populated after
        # the first update forces the kernels to allocate it.
        assert index["scratch"] is None
        service.apply(UpdateOp.insert_edge(0, 2))
        scratch = collect_health(service)["index"]["scratch"]
        assert scratch is not None and scratch["capacity"] >= 0

    def test_payload_with_durability(self, tmp_path):
        durability = DurabilityManager(tmp_path, fsync="never")
        service = ReachabilityService(
            chain(), flush_threshold=1, durability=durability
        )
        service.apply(UpdateOp.insert_vertex("x"))
        payload = collect_health(service)
        wal = payload["wal"]
        assert wal["last_seq"] >= 1
        assert wal["lag_ops"] == wal["last_seq"] - wal["checkpointed_seq"]
        assert wal["lag_bytes"] > 0
        assert wal["checkpoints"] >= 1  # seed checkpoint of the base graph
        assert wal["checkpoint_age_s"] >= 0.0

    def test_wedged_writer_degrades_to_stale(self):
        service = ReachabilityService(chain())
        service._rwlock.acquire_write()  # pose as a stuck writer
        try:
            payload = collect_health(service)  # try-lock times out inside
        finally:
            service._rwlock.release_write()
        assert payload["index"]["stale"] is True
        assert "labels" not in payload["index"]
        # The lock-free fields still arrive.
        assert payload["epoch"] == 0

    def test_health_method_on_service(self):
        service = ReachabilityService(chain())
        assert service.health()["index"]["num_vertices"] == 6


class TestBindHealthGauges:
    def test_gauges_land_in_snapshot(self):
        registry = MetricRegistry()
        service = ReachabilityService(chain(), registry=registry)
        bind_health_gauges(registry, service)
        gauges = registry.snapshot()["gauges"]
        assert gauges["health.order.quality"] > 0.0
        assert gauges["health.labels.in_max"] >= 1
        assert gauges["health.wal.lag_ops"] is None  # no durability

    def test_ttl_caches_the_walk(self, monkeypatch):
        registry = MetricRegistry()
        service = ReachabilityService(chain(), registry=registry)
        calls = {"n": 0}
        real = collect_health

        def counting(svc):
            calls["n"] += 1
            return real(svc)

        monkeypatch.setattr("repro.obs.health.collect_health", counting)
        bind_health_gauges(registry, service, ttl=60.0)
        registry.snapshot()
        registry.snapshot()
        # 11 gauges x 2 snapshots, but one collect within the TTL.
        assert calls["n"] == 1


class TestRenderHealth:
    def test_renders_every_section(self, tmp_path):
        durability = DurabilityManager(tmp_path, fsync="never")
        service = ReachabilityService(
            chain(), cache_size=16, durability=durability
        )
        text = render_health(collect_health(service))
        assert "epoch 0" in text
        assert "|V|=6" in text
        assert "Lin " in text and "Lout" in text
        assert "order quality" in text
        assert "wal: lag" in text
        assert "cache:" in text

    def test_renders_stale_index(self):
        service = ReachabilityService(chain())
        payload = collect_health(service)
        payload["index"] = {"stale": True}
        assert "STALE" in render_health(payload)
