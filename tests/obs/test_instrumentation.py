"""End-to-end checks that the core algorithms emit their spans.

These tests run real operations (build, insert, delete, reduce, serve)
under :func:`trace.capture` and assert the promised telemetry lands in
the registry — they are the contract ``docs/observability.md`` documents.
"""

import pytest

from repro.core import butterfly_build, resolve_order_strategy
from repro.core.deletion import delete_vertex
from repro.core.insertion import insert_vertex
from repro.core.reduction import reduce_labels
from repro.graph.generators import random_dag
from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracing_off():
    trace.disable()
    yield
    trace.disable()


@pytest.fixture
def indexed():
    graph = random_dag(60, 180, seed=11)
    order = resolve_order_strategy("butterfly-u")(graph)
    labeling = butterfly_build(graph, order)
    return graph, labeling


class TestBuildSpan:
    def test_build_emits_span_and_per_level_events(self):
        graph = random_dag(40, 100, seed=3)
        order = resolve_order_strategy("butterfly-u")(graph)
        with trace.capture() as reg:
            labeling = butterfly_build(graph, order)
        snap = reg.snapshot()
        assert snap["histograms"]["span.tol.build"]["count"] == 1
        # One tol.build.level event per peeled vertex.
        assert snap["counters"]["event.tol.build.level"] == 40
        # |V_k| starts at |V| and the span records the final label count.
        assert snap["stats"]["event.tol.build.level.v_k"]["max"] == 40
        assert snap["stats"]["event.tol.build.level.v_k"]["min"] == 1
        assert snap["stats"]["event.tol.build.level.e_k"]["max"] == 100
        assert snap["stats"]["span.tol.build.labels"]["max"] == labeling.size()

    def test_residual_edges_reach_zero_on_a_path(self):
        graph = random_dag(10, 9, seed=1)
        order = resolve_order_strategy("butterfly-u")(graph)
        with trace.capture() as reg:
            butterfly_build(graph, order)
        # The last peel sees a single vertex and no surviving edges.
        assert reg.snapshot()["stats"]["event.tol.build.level.e_k"]["min"] == 0


class TestInsertDeleteSpans:
    def test_insert_records_choose_level_and_labels_added(self, indexed):
        graph, labeling = indexed
        graph.add_vertex_if_absent("new")
        graph.add_edge(0, "new")
        with trace.capture() as reg:
            insert_vertex(graph, labeling, "new")
        snap = reg.snapshot()
        assert snap["histograms"]["span.tol.insert"]["count"] == 1
        assert snap["histograms"]["span.tol.insert.choose_level"]["count"] == 1
        scanned = snap["stats"]["span.tol.insert.choose_level.candidates_scanned"]
        assert scanned["max"] >= 1
        assert snap["stats"]["span.tol.insert.labels_added"]["count"] == 1

    def test_delete_records_frontiers_and_labels_removed(self, indexed):
        graph, labeling = indexed
        v = next(iter(labeling.order))
        with trace.capture() as reg:
            delete_vertex(graph, labeling, v)
        snap = reg.snapshot()
        assert snap["histograms"]["span.tol.delete"]["count"] == 1
        for attr in ("frontier_fwd", "frontier_bwd", "labels_removed"):
            assert snap["stats"][f"span.tol.delete.{attr}"]["count"] == 1
            assert snap["stats"][f"span.tol.delete.{attr}"]["min"] >= 0


class TestReductionSpan:
    def test_reduction_emits_round_trajectory(self, indexed):
        graph, labeling = indexed
        with trace.capture() as reg:
            report = reduce_labels(graph, labeling, max_rounds=2)
        snap = reg.snapshot()
        assert snap["histograms"]["span.tol.reduction"]["count"] == 1
        rounds = snap["counters"]["event.tol.reduction.round"]
        assert rounds == len(report.round_sizes)
        assert (
            snap["stats"]["event.tol.reduction.round.size"]["min"]
            == report.final_size
        )
        assert (
            snap["stats"]["span.tol.reduction.final_size"]["max"]
            == report.final_size
        )


class TestDisabledLeavesNoTrace:
    def test_operations_run_clean_without_tracing(self, indexed):
        graph, labeling = indexed
        v = next(iter(labeling.order))
        delete_vertex(graph, labeling, v)  # no registry, must not raise
        assert trace.current_registry() is None


class TestServiceIntegration:
    def test_one_replay_one_registry(self):
        """The acceptance scenario: service + core spans in one snapshot."""
        from repro.service import ReachabilityService

        graph = random_dag(50, 150, seed=5)
        with trace.capture() as reg:
            service = ReachabilityService(graph, registry=reg)
            vs = list(graph.vertices())
            service.query(vs[0], vs[1])
            service.query(vs[0], vs[1])  # cache hit
            service.delete_vertex(vs[2])
            service.flush()
            service.reduce_labels(max_rounds=1)
            snap = service.registry.snapshot()
        # Core spans... (reduction round-trips every vertex through
        # delete/insert, so tol.delete counts far exceed the one explicit
        # deletion — only the lower bound is stable).
        assert snap["histograms"]["span.tol.build"]["count"] == 1
        assert snap["histograms"]["span.tol.delete"]["count"] >= 1
        assert snap["histograms"]["span.tol.reduction"]["count"] == 1
        # ...service counters and latency...
        assert snap["counters"]["service.queries"] == 2
        assert snap["histograms"]["service.query_latency"]["count"] == 2
        # ...and cache gauges, all through ONE registry.
        assert snap["gauges"]["cache.hits"] == 1
        assert snap["gauges"]["cache.hit_rate"] == 0.5
