"""Single-threaded behavior tests for ReachabilityService.

Concurrency is exercised separately in ``test_concurrency.py``; here we
pin down the facade's sequential semantics: cache-through queries, batch
deduplication, queue flushing, epoch accounting and the metrics snapshot.
"""

import pytest

from repro.bench.trace import generate_trace
from repro.bench.workloads import generate_zipfian_queries
from repro.core.index import ReachabilityIndex
from repro.errors import UnknownVertexError, VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp


def diamond() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestConstruction:
    def test_from_graph(self):
        service = ReachabilityService(diamond())
        assert service.query("a", "d")
        assert service.epoch == 0

    def test_from_prebuilt_index(self):
        index = ReachabilityIndex(diamond())
        service = ReachabilityService(index=index)
        assert service.query("a", "d")

    def test_graph_and_index_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ReachabilityService(diamond(), index=ReachabilityIndex(diamond()))

    def test_bad_flush_threshold(self):
        with pytest.raises(ValueError):
            ReachabilityService(diamond(), flush_threshold=0)

    def test_unknown_vertex_propagates(self):
        service = ReachabilityService(diamond())
        with pytest.raises(VertexNotFoundError):
            service.query("a", "ghost")


class TestQueryCache:
    def test_second_query_hits(self):
        service = ReachabilityService(diamond(), cache_size=16)
        service.query("a", "d")
        service.query("a", "d")
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_write_invalidates(self):
        service = ReachabilityService(diamond(), cache_size=16)
        assert service.query("a", "d") is True
        service.delete_vertex("b")
        service.delete_vertex("c")
        assert service.query("a", "d") is False  # not the cached True
        assert service.cache.stats()["stale_drops"] >= 1

    def test_cache_disabled(self):
        service = ReachabilityService(diamond(), cache_size=0)
        service.query("a", "d")
        service.query("a", "d")
        assert service.cache.stats()["hits"] == 0

    def test_zipfian_workload_has_nonzero_hit_rate(self):
        # Acceptance criterion: a skewed read stream must actually cache.
        graph = random_dag(60, 150, seed=7)
        service = ReachabilityService(graph, cache_size=1024)
        workload = generate_zipfian_queries(graph, 500, skew=1.1, seed=3)
        for s, t in workload:
            service.query(s, t)
        snapshot = service.snapshot()
        assert snapshot["cache"]["hit_rate"] > 0
        assert snapshot["counters"]["queries"] == 500


class TestQueryBatch:
    def test_matches_plain_index(self):
        graph = random_dag(40, 100, seed=2)
        service = ReachabilityService(graph)
        plain = ReachabilityIndex(graph)
        pairs = [(s, t) for s in list(graph.vertices())[:10]
                 for t in list(graph.vertices())[:10]]
        assert service.query_batch(pairs) == [plain.query(s, t)
                                              for s, t in pairs]

    def test_duplicates_answered_once_in_input_order(self):
        service = ReachabilityService(diamond(), cache_size=16)
        pairs = [("a", "d"), ("d", "a"), ("a", "d"), ("a", "d")]
        assert service.query_batch(pairs) == [True, False, True, True]
        snap = service.snapshot()
        assert snap["counters"]["batch_dedup_saved"] == 2
        assert snap["counters"]["queries"] == 4
        # Only the two unique pairs ever reached cache/index.
        assert service.cache.stats()["misses"] == 2

    def test_empty_batch(self):
        service = ReachabilityService(diamond())
        assert service.query_batch([]) == []


class TestUpdatesAndEpochs:
    def test_write_through_by_default(self):
        service = ReachabilityService(diamond())
        service.insert_vertex("e", in_neighbors=["d"])
        assert service.queue_depth == 0  # flushed immediately
        assert service.query("a", "e")
        assert service.epoch == 1

    def test_batching_defers_application(self):
        service = ReachabilityService(diamond(), flush_threshold=10)
        service.insert_edge("b", "c")
        assert service.queue_depth == 1
        assert service.query("b", "c") is False  # not applied yet
        assert service.flush() == 1
        assert service.query("b", "c") is True
        assert service.epoch == 1

    def test_coalesced_pair_never_applies(self):
        service = ReachabilityService(diamond(), flush_threshold=10,
                                      record_applied=True)
        service.insert_vertex("e", in_neighbors=["d"])
        service.delete_vertex("e")
        assert service.queue_depth == 0
        service.flush()
        assert service.applied_ops == []
        assert service.epoch == 0

    def test_epoch_counts_each_successful_op(self):
        service = ReachabilityService(diamond(), flush_threshold=10)
        service.insert_edge("b", "c")
        service.delete_edge("b", "c")  # cancels in the queue
        service.insert_vertex("e")
        service.flush()
        assert service.epoch == 1

    def test_unknown_reference_rejected_at_submit(self):
        service = ReachabilityService(diamond())
        with pytest.raises(UnknownVertexError):
            service.delete_vertex("ghost")
        with pytest.raises(UnknownVertexError):
            service.insert_edge("a", "ghost")
        with pytest.raises(UnknownVertexError):
            service.insert_vertex("e", in_neighbors=["ghost"])
        # Nothing was enqueued or applied.
        assert service.queue_depth == 0
        assert service.epoch == 0
        assert service.query("a", "d")

    def test_pending_insert_satisfies_references(self):
        service = ReachabilityService(diamond(), flush_threshold=10)
        service.insert_vertex("e")
        service.insert_edge("d", "e")  # "e" exists only in the queue
        service.delete_vertex("e")     # coalesces the pair away
        with pytest.raises(UnknownVertexError):
            service.insert_edge("d", "e")  # and now it is unknown again

    def test_invalid_op_rejected_at_apply_without_epoch_bump(self):
        # validate=False falls back to the apply-time rejection path.
        service = ReachabilityService(diamond())
        service.submit_update(UpdateOp.delete_vertex("ghost"), validate=False)
        snap = service.snapshot()
        assert snap["counters"]["updates_rejected"] == 1
        assert service.epoch == 0
        # Service still healthy.
        assert service.query("a", "d")

    def test_flush_threshold_triggers(self):
        service = ReachabilityService(diamond(), flush_threshold=2)
        service.insert_vertex("e")
        assert service.queue_depth == 1
        service.insert_vertex("f")
        assert service.queue_depth == 0
        assert service.epoch == 2

    def test_applied_ops_requires_flag(self):
        service = ReachabilityService(diamond())
        with pytest.raises(ValueError):
            service.applied_ops

    def test_context_manager_flushes(self):
        with ReachabilityService(diamond(), flush_threshold=100) as service:
            service.insert_vertex("e", in_neighbors=["d"])
            assert service.queue_depth == 1
        assert service.queue_depth == 0
        assert service.epoch == 1

    def test_reduce_labels_bumps_epoch(self):
        service = ReachabilityService(random_dag(30, 80, seed=4))
        before = service.epoch
        report = service.reduce_labels()
        assert service.epoch == before + 1
        assert report.final_size <= report.initial_size
        assert service.snapshot()["counters"]["reductions"] == 1


class TestTraceEquivalence:
    def test_trace_through_service_matches_plain_index(self):
        # The service (with batching + coalescing disabled-by-flush at
        # each query) must agree with a plain index replaying the same
        # trace sequentially.
        graph = random_dag(30, 70, seed=5)
        trace = generate_trace(graph, 150, seed=6, query_fraction=0.5)

        plain = ReachabilityIndex(graph)
        service = ReachabilityService(graph, flush_threshold=1000)
        for op in trace:
            if op.kind == "query":
                service.flush()  # force same visibility as the plain run
                assert service.query(op.tail, op.head) == plain.query(
                    op.tail, op.head
                ), op
            else:
                UpdateOp.from_trace_op(op).apply(plain)
                service.submit_update(UpdateOp.from_trace_op(op))


class TestIntrospection:
    def test_counts_and_repr(self):
        service = ReachabilityService(diamond())
        assert service.num_vertices == 4
        assert service.num_edges == 4
        assert "ReachabilityService" in repr(service)

    def test_snapshot_shape(self):
        service = ReachabilityService(diamond())
        service.query("a", "d")
        service.insert_vertex("e")
        snap = service.snapshot()
        assert snap["epoch"] == 1
        assert snap["queue"]["submitted"] == 1
        assert snap["cache"]["misses"] == 1
        assert snap["query_latency"]["count"] == 1
        assert snap["batch_size"]["count"] == 1
        # Counters are namespaced: a counter can no longer shadow a
        # histogram key in the flat merge.
        assert snap["counters"]["queries"] == 1
        assert "queries" not in snap

    def test_registry_covers_service_cache_and_index(self):
        service = ReachabilityService(diamond())
        service.query("a", "d")
        service.query("a", "d")
        snap = service.registry.snapshot()
        assert snap["counters"]["service.queries"] == 2
        assert snap["gauges"]["cache.hits"] == 1
        assert snap["gauges"]["index.num_vertices"] == 4
        assert snap["gauges"]["service.epoch"] == 0
        assert snap["histograms"]["service.query_latency"]["count"] == 2

    def test_shared_registry_injection(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        service = ReachabilityService(diamond(), registry=registry)
        assert service.registry is registry
        service.query("a", "d")
        assert registry.snapshot()["counters"]["service.queries"] == 1
