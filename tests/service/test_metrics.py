"""Tests for serving metrics: histograms, running stats, snapshots."""

import threading

import pytest

from repro.service.metrics import LatencyHistogram, RunningStats, ServiceMetrics


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["p99"] is None

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        for v in (1e-6, 2e-6, 3e-6):
            hist.record(v)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2e-6)
        assert hist.snapshot()["max"] == pytest.approx(3e-6)

    def test_quantiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1.5e-6)  # bucket (1µs, 2µs]
        hist.record(0.9)  # one slow outlier
        assert hist.quantile(0.5) <= 2e-6
        assert hist.quantile(0.99) <= 2e-6
        assert hist.quantile(1.0) >= 0.9 / 2  # within one power of two

    def test_quantile_never_exceeds_max(self):
        hist = LatencyHistogram()
        hist.record(1.2e-6)
        assert hist.quantile(0.5) == pytest.approx(1.2e-6)

    def test_overflow_bucket_quantiles_report_max(self):
        # Observations beyond the last bucket bound (~67s) land in the
        # overflow bucket; every quantile that falls there must report
        # the true maximum, not a bucket bound.
        hist = LatencyHistogram()
        hist.record(100.0)
        hist.record(250.0)
        assert hist.quantile(0.5) == pytest.approx(250.0)
        assert hist.quantile(1.0) == pytest.approx(250.0)
        assert hist.snapshot()["max"] == pytest.approx(250.0)

    def test_single_observation_all_quantiles_equal_it(self):
        hist = LatencyHistogram()
        hist.record(3.7e-5)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(3.7e-5)

    def test_q_one_is_the_maximum(self):
        hist = LatencyHistogram()
        for v in (1e-6, 5e-5, 2e-3, 0.4):
            hist.record(v)
        assert hist.quantile(1.0) == pytest.approx(0.4)

    def test_snapshot_is_consistent_under_concurrent_records(self):
        # The snapshot is taken under one lock hold: count/mean/quantiles
        # must describe the same set of observations even while writers
        # race (the old per-field reads could tear).
        hist = LatencyHistogram()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                hist.record(1e-5)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = hist.snapshot()
                if snap["count"] == 0:
                    assert snap["mean"] is None and snap["max"] is None
                else:
                    # All observations are 1e-5: a torn read would show
                    # a mean inconsistent with the recorded value.
                    assert snap["mean"] == pytest.approx(1e-5)
                    assert snap["p50"] == pytest.approx(1e-5)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_concurrent_recording(self):
        hist = LatencyHistogram()

        def record_many():
            for _ in range(1000):
                hist.record(1e-5)

        threads = [threading.Thread(target=record_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert hist.count == 4000


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats().snapshot()
        assert stats == {"count": 0, "mean": None, "min": None, "max": None}

    def test_accumulates(self):
        stats = RunningStats()
        for v in (4, 2, 6):
            stats.record(v)
        snap = stats.snapshot()
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(4.0)
        assert (snap["min"], snap["max"]) == (2, 6)


class TestServiceMetrics:
    def test_counters(self):
        metrics = ServiceMetrics()
        assert metrics.counter("queries") == 0
        metrics.incr("queries")
        metrics.incr("queries", 5)
        assert metrics.counter("queries") == 6

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.incr("updates_applied", 2)
        metrics.query_latency.record(1e-5)
        metrics.batch_size.record(3)
        snap = metrics.snapshot()
        assert snap["counters"]["updates_applied"] == 2
        assert snap["query_latency"]["count"] == 1
        assert snap["batch_size"]["max"] == 3
        assert "batch_apply_latency" in snap
        assert "updates_applied" not in snap  # namespaced, not flat

    def test_counter_cannot_shadow_histogram(self):
        # The old flat merge let a counter named `query_latency` silently
        # shadow the histogram; the registry now rejects the rebind.
        metrics = ServiceMetrics()
        with pytest.raises(ValueError):
            metrics.incr("query_latency")

    def test_shared_registry(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        metrics = ServiceMetrics(registry)
        metrics.incr("queries", 3)
        assert registry.snapshot()["counters"]["service.queries"] == 3
