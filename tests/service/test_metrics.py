"""Tests for serving metrics: histograms, running stats, snapshots."""

import threading

import pytest

from repro.service.metrics import LatencyHistogram, RunningStats, ServiceMetrics


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["p99"] is None

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        for v in (1e-6, 2e-6, 3e-6):
            hist.record(v)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2e-6)
        assert hist.snapshot()["max"] == pytest.approx(3e-6)

    def test_quantiles_are_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1.5e-6)  # bucket (1µs, 2µs]
        hist.record(0.9)  # one slow outlier
        assert hist.quantile(0.5) <= 2e-6
        assert hist.quantile(0.99) <= 2e-6
        assert hist.quantile(1.0) >= 0.9 / 2  # within one power of two

    def test_quantile_never_exceeds_max(self):
        hist = LatencyHistogram()
        hist.record(1.2e-6)
        assert hist.quantile(0.5) == pytest.approx(1.2e-6)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_concurrent_recording(self):
        hist = LatencyHistogram()

        def record_many():
            for _ in range(1000):
                hist.record(1e-5)

        threads = [threading.Thread(target=record_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert hist.count == 4000


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats().snapshot()
        assert stats == {"count": 0, "mean": None, "min": None, "max": None}

    def test_accumulates(self):
        stats = RunningStats()
        for v in (4, 2, 6):
            stats.record(v)
        snap = stats.snapshot()
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(4.0)
        assert (snap["min"], snap["max"]) == (2, 6)


class TestServiceMetrics:
    def test_counters(self):
        metrics = ServiceMetrics()
        assert metrics.counter("queries") == 0
        metrics.incr("queries")
        metrics.incr("queries", 5)
        assert metrics.counter("queries") == 6

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.incr("updates_applied", 2)
        metrics.query_latency.record(1e-5)
        metrics.batch_size.record(3)
        snap = metrics.snapshot()
        assert snap["updates_applied"] == 2
        assert snap["query_latency"]["count"] == 1
        assert snap["batch_size"]["max"] == 3
        assert "batch_apply_latency" in snap
