"""Trace ids and the flight recorder through the service write path.

``test_faults.py`` pins the retry/quarantine mechanics; here we pin the
observability riding on them: a batch's trace id follows its ops into
the WAL and onto :class:`QuarantinedUpdate`, and the flight recorder is
dumped exactly on the events that need a post-mortem (degraded-mode
entry, quarantine, recovery).
"""

from repro.graph.digraph import DiGraph
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricRegistry
from repro.service.durability import DurabilityManager
from repro.service.faults import FaultInjector, FaultPolicy
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp


def diamond() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestTraceToWal:
    def test_apply_batch_stamps_every_record(self, tmp_path):
        durability = DurabilityManager(tmp_path, fsync="never")
        service = ReachabilityService(
            diamond(), flush_threshold=1, durability=durability
        )
        ops = [
            UpdateOp.insert_vertex("e", in_neighbors=["d"]),
            UpdateOp.insert_edge("a", "e"),
        ]
        service.apply_batch(ops, trace_id="0123456789abcdef")
        traces = [
            t for _, op, t in durability.wal.records_with_traces()
            if op.kind in ("insert_vertex", "insert_edge")
        ]
        assert traces == ["0123456789abcdef"] * 2

    def test_traces_are_per_batch_not_sticky(self, tmp_path):
        durability = DurabilityManager(tmp_path, fsync="never")
        service = ReachabilityService(
            diamond(), flush_threshold=1, durability=durability
        )
        service.apply(UpdateOp.insert_vertex("e"), trace_id="aaaa0000aaaa0000")
        service.apply(UpdateOp.insert_vertex("f"))  # untraced
        by_vertex = {
            op.vertex: t
            for _, op, t in durability.wal.records_with_traces()
            if op.kind == "insert_vertex"
        }
        assert by_vertex["e"] == "aaaa0000aaaa0000"
        assert by_vertex["f"] is None

    def test_trace_tag_table_is_bounded(self):
        service = ReachabilityService(diamond(), flush_threshold=10**9)
        for i in range(5000):
            service.submit_update(
                UpdateOp.insert_vertex(f"v{i}"),
                validate=False,
                trace_id=f"{i:016x}",
            )
        # The id(op) -> trace map must not grow without bound when a
        # large queue builds up; it is cleared past the cap instead.
        assert len(service._op_traces) <= 4097


class TestQuarantineTraces:
    def _poisoned(self, **kwargs):
        injector = FaultInjector()
        policy = FaultPolicy(max_retries=1, backoff_base=0.0001)
        service = ReachabilityService(
            diamond(), injector=injector, fault_policy=policy, **kwargs
        )
        injector.arm("service.apply", "ioerror", times=0)  # fail forever
        return service

    def test_quarantined_op_keeps_its_trace(self):
        service = self._poisoned()
        service.apply(
            UpdateOp.insert_vertex("e"), trace_id="beefbeefbeef0001"
        )
        [bad] = service.quarantined
        assert bad.trace_id == "beefbeefbeef0001"
        assert "beefbeefbeef0001" in repr(bad)

    def test_untraced_quarantine_has_no_tag(self):
        service = self._poisoned()
        service.apply(UpdateOp.insert_vertex("e"))
        [bad] = service.quarantined
        assert bad.trace_id is None

    def test_quarantine_dumps_the_flight_recorder(self, tmp_path):
        registry = MetricRegistry()
        flight = FlightRecorder(registry, dump_dir=tmp_path / "flights")
        service = self._poisoned(registry=registry, flight=flight)
        service.apply(
            UpdateOp.insert_vertex("e"), trace_id="beefbeefbeef0002"
        )
        dumps = sorted((tmp_path / "flights").glob("flight-quarantine-*"))
        assert len(dumps) == 1
        markers = [
            e for e in flight.snapshots() if e["kind"] == "marker"
        ]
        assert markers[0]["event"] == "quarantine"
        assert markers[0]["attrs"]["trace"] == "beefbeefbeef0002"


class TestDegradedFlightDump:
    def test_operator_entry_dumps_once_per_edge(self, tmp_path):
        registry = MetricRegistry()
        flight = FlightRecorder(registry, dump_dir=tmp_path / "flights")
        service = ReachabilityService(
            diamond(), registry=registry, flight=flight
        )
        service.enter_degraded()
        service.enter_degraded()  # already degraded: no second dump
        service.exit_degraded()
        service.enter_degraded()  # a fresh edge dumps again
        dumps = sorted((tmp_path / "flights").glob("flight-degraded-*"))
        assert len(dumps) == 2
        reasons = [
            e["attrs"]["reason"] for e in flight.snapshots()
            if e["kind"] == "marker"
        ]
        assert reasons == ["operator", "operator"]

    def test_no_flight_wired_is_fine(self):
        service = ReachabilityService(diamond())
        service.enter_degraded()  # must not raise without a recorder
        assert service.degraded
        service.exit_degraded()

    def test_recovery_dumps_a_timeline(self, tmp_path):
        durability = DurabilityManager(tmp_path / "state", fsync="never")
        service = ReachabilityService(
            diamond(), flush_threshold=1, durability=durability
        )
        service.apply(UpdateOp.insert_vertex("e"))
        durability.close()

        registry = MetricRegistry()
        flight = FlightRecorder(registry, dump_dir=tmp_path / "flights")
        recovered = ReachabilityService.recover(
            tmp_path / "state", registry=registry, flight=flight
        )
        assert "e" in recovered._index
        dumps = sorted((tmp_path / "flights").glob("flight-recovery-*"))
        assert len(dumps) == 1
