"""Tests for the epoch-invalidated LRU query cache."""

import pytest

from repro.service.cache import MISS, EpochLRUCache


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = EpochLRUCache(capacity=4)
        assert cache.get(("a", "b"), 0) is MISS
        cache.put(("a", "b"), 0, True)
        assert cache.get(("a", "b"), 0) is True

    def test_false_is_a_real_value(self):
        cache = EpochLRUCache(capacity=4)
        cache.put(("a", "b"), 0, False)
        assert cache.get(("a", "b"), 0) is False  # not MISS

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EpochLRUCache(capacity=-1)

    def test_zero_capacity_disables(self):
        cache = EpochLRUCache(capacity=0)
        cache.put(("a", "b"), 0, True)
        assert cache.get(("a", "b"), 0) is MISS
        assert len(cache) == 0


class TestEpochInvalidation:
    def test_stale_entry_misses_and_is_dropped(self):
        cache = EpochLRUCache(capacity=4)
        cache.put(("a", "b"), 0, True)
        assert cache.get(("a", "b"), 1) is MISS  # a write bumped the epoch
        assert len(cache) == 0
        assert cache.stats()["stale_drops"] == 1

    def test_fresh_entry_after_restamp(self):
        cache = EpochLRUCache(capacity=4)
        cache.put(("a", "b"), 0, True)
        cache.put(("a", "b"), 3, False)  # recomputed after writes
        assert cache.get(("a", "b"), 3) is False

    def test_epoch_bump_invalidates_everything_lazily(self):
        cache = EpochLRUCache(capacity=8)
        for i in range(5):
            cache.put(("s", i), 0, True)
        # Nothing was scanned or evicted at "write time" ...
        assert len(cache) == 5
        # ... but at the new epoch every entry misses.
        assert all(cache.get(("s", i), 1) is MISS for i in range(5))
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = EpochLRUCache(capacity=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh "a"
        cache.put("c", 0, 3)  # evicts "b"
        assert cache.get("b", 0) is MISS
        assert cache.get("a", 0) == 1
        assert cache.get("c", 0) == 3
        assert cache.stats()["evictions"] == 1

    def test_overwrite_does_not_grow(self):
        cache = EpochLRUCache(capacity=2)
        for _ in range(5):
            cache.put("a", 0, True)
        assert len(cache) == 1

    def test_clear_preserves_stats(self):
        cache = EpochLRUCache(capacity=2)
        cache.put("a", 0, 1)
        cache.get("a", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1


class TestStats:
    def test_hit_rate(self):
        cache = EpochLRUCache(capacity=4)
        assert cache.hit_rate is None
        cache.put("a", 0, 1)
        cache.get("a", 0)
        cache.get("missing", 0)
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["capacity"] == 4 and stats["entries"] == 1
