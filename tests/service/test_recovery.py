"""Crash-matrix recovery tests: every named crash point vs a BFS oracle.

For each crash point in :data:`repro.service.faults.CRASH_POINTS` the
test drives a durable :class:`ReachabilityService` through a fixed-seed
random update trace with the injector armed to crash mid-trace, abandons
the wreck exactly as a killed process would, recovers from the
durability directory, and checks two things:

1. **Prefix consistency** — the recovered graph is exactly the base
   graph plus every acknowledged op, possibly plus the single in-flight
   op (which is legitimately recovered iff its WAL record survived the
   crash point).  Log-before-apply makes any other outcome a bug.
2. **Query correctness** — the recovered index agrees with a
   zero-preprocessing :class:`~repro.baselines.search.BFSBaseline` on a
   Zipfian-sampled query workload over the recovered graph.

``fsync="always"`` with ``flush_threshold=1`` keeps WAL sequence order
identical to submission order, which is what makes the expected-state
computation deterministic.
"""

import pytest

from repro.baselines.search import BFSBaseline
from repro.bench.trace import generate_trace
from repro.bench.workloads import generate_zipfian_queries
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.service.durability import DurabilityManager
from repro.service.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp

#: Crash on the Nth hit of the point, tuned so every point fires
#: mid-trace: WAL/apply points fire once per op, checkpoint points once
#: per checkpoint (and ``checkpoint_every=4`` forces several).
_ARM_AFTER = {
    "wal.append.before": 13,
    "wal.append.torn": 13,
    "wal.append.after": 13,
    "wal.sync": 13,
    "service.apply": 13,
    "checkpoint.serialize": 2,
    "checkpoint.rename": 2,
    "checkpoint.after": 2,
}

#: Points where the in-flight op's WAL record survives the crash and is
#: therefore *expected* to be replayed.  Everywhere else the record is
#: missing (crash before append) or torn (truncated on open).
_INFLIGHT_DURABLE = {
    "wal.append.after",
    "wal.sync",
    "service.apply",
    "checkpoint.serialize",
    "checkpoint.rename",
    "checkpoint.after",
}


def base_graph() -> DiGraph:
    return random_dag(24, 60, seed=11)


def mutation_trace(graph: DiGraph, n: int = 30) -> list[UpdateOp]:
    trace = generate_trace(graph, n, seed=17, query_fraction=0.0)
    return [UpdateOp.from_trace_op(op) for op in trace]


def run_until_crash(tmp_path, point: str):
    """Drive the trace into an armed service; return (acked, in_flight)."""
    injector = FaultInjector()
    action = "torn" if point == "wal.append.torn" else "crash"
    injector.arm(point, action, after=_ARM_AFTER[point])
    durability = DurabilityManager(
        tmp_path, fsync="always", checkpoint_every=4, injector=injector
    )
    service = ReachabilityService(
        base_graph(),
        flush_threshold=1,
        durability=durability,
        injector=injector,
    )

    acked: list[UpdateOp] = []
    in_flight = None
    try:
        for op in mutation_trace(base_graph()):
            in_flight = op
            service.submit_update(op)
            acked.append(op)
            in_flight = None
    except InjectedCrash as crash:
        assert crash.point == point
    else:
        pytest.fail(f"crash point {point!r} never fired")
    # Simulate the process dying: abandon the wreck without close() or
    # flush().  Every surviving record was already flushed by append().
    return acked, in_flight


def expected_candidates(acked, in_flight, point):
    """The set of graphs recovery may legitimately produce."""
    must = base_graph()
    for op in acked:
        op.apply_to_graph(must)
    candidates = [must]
    if in_flight is not None and point in _INFLIGHT_DURABLE:
        with_inflight = must.copy()
        try:
            in_flight.apply_to_graph(with_inflight)
        except Exception:
            pass  # replay would skip it the same way
        candidates = [with_inflight]
    return candidates


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_matrix(tmp_path, point):
    acked, in_flight = run_until_crash(tmp_path, point)
    assert acked, "trace must make progress before the crash"

    recovered = ReachabilityService.recover(tmp_path, fsync="never")
    report = recovered.last_recovery
    assert report is not None

    candidates = expected_candidates(acked, in_flight, point)
    assert any(report.graph == c for c in candidates), (
        f"{point}: recovered graph matches no legitimate prefix "
        f"(acked={len(acked)}, report={report})"
    )

    # Definition 1 oracle: the recovered index must answer exactly like
    # bidirectional BFS over the recovered graph, on a skewed workload.
    oracle = BFSBaseline(report.graph)
    if report.graph.num_vertices >= 2:
        for s, t in generate_zipfian_queries(report.graph, 200, seed=5):
            assert recovered.query(s, t) == oracle.query(s, t), (point, s, t)

    # And it must keep serving writes with a continuous WAL sequence.
    pre = recovered.durability.wal.last_seq
    recovered.insert_vertex("post-crash", in_neighbors=[])
    assert recovered.durability.wal.last_seq == pre + 1
    assert recovered.self_audit(16)
    recovered.durability.close()


def test_base_graph_survives_crash_before_first_checkpoint(tmp_path):
    # The WAL only carries updates; a fresh durability directory under a
    # non-empty starting graph gets a baseline checkpoint at construction
    # so an immediate crash cannot lose the base state.
    injector = FaultInjector()
    injector.arm("wal.append.before", after=1)  # crash on the very first op
    durability = DurabilityManager(tmp_path, fsync="always", injector=injector)
    service = ReachabilityService(
        base_graph(), flush_threshold=1, durability=durability,
        injector=injector,
    )
    with pytest.raises(InjectedCrash):
        service.submit_update(mutation_trace(base_graph())[0])

    recovered = ReachabilityService.recover(tmp_path, fsync="never")
    assert recovered.last_recovery.graph == base_graph()
    assert recovered.last_recovery.replayed == 0
    recovered.durability.close()


def test_recover_twice_without_new_writes_is_stable(tmp_path):
    acked, _ = run_until_crash(tmp_path, "service.apply")
    first = ReachabilityService.recover(tmp_path, fsync="never")
    g1 = first.last_recovery.graph
    first.durability.close()
    second = ReachabilityService.recover(tmp_path, fsync="never")
    assert second.last_recovery.graph == g1
    second.durability.close()


def test_clean_shutdown_recovers_everything(tmp_path):
    ops = mutation_trace(base_graph())
    durability = DurabilityManager(tmp_path, fsync="never", checkpoint_every=8)
    with ReachabilityService(
        base_graph(), flush_threshold=4, durability=durability
    ) as service:
        for op in ops:
            service.submit_update(op)
    service.durability.close()

    expected = base_graph()
    for op in ops:
        op.apply_to_graph(expected)
    recovered = ReachabilityService.recover(tmp_path, fsync="never")
    assert recovered.last_recovery.graph == expected
    oracle = BFSBaseline(expected)
    for s, t in generate_zipfian_queries(expected, 100, seed=9):
        assert recovered.query(s, t) == oracle.query(s, t)
    recovered.durability.close()
