"""Tests for the serving-layer primitives: RWLock and EpochCounter."""

import threading
import time

import pytest

from repro.service.concurrency import EpochCounter, RWLock


class TestRWLockBasics:
    def test_read_then_write_sequentially(self):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass

    def test_multiple_readers_coexist(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_unbalanced_release_rejected(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_write()
        with pytest.raises(RuntimeError):
            lock.release_read()


class TestRWLockExclusion:
    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        counter = {"value": 0, "max_seen": 0}
        guard = threading.Lock()

        def writer():
            for _ in range(50):
                with lock.write_locked():
                    with guard:
                        counter["value"] += 1
                        counter["max_seen"] = max(
                            counter["max_seen"], counter["value"]
                        )
                    with guard:
                        counter["value"] -= 1

        def reader():
            for _ in range(50):
                with lock.read_locked():
                    with guard:
                        assert counter["value"] == 0

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert counter["max_seen"] == 1  # never two writers inside

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            with lock.write_locked():
                pass
            writer_done.set()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=5)
        time.sleep(0.05)  # let the writer reach the wait loop

        # A new reader must now block (writer preference) until the
        # original reader leaves and the writer completes.
        entered = threading.Event()

        def late_reader():
            with lock.read_locked():
                entered.set()

        t2 = threading.Thread(target=late_reader)
        t2.start()
        time.sleep(0.05)
        assert not entered.is_set()
        lock.release_read()
        t.join(timeout=5)
        t2.join(timeout=5)
        assert writer_done.is_set() and entered.is_set()


class TestEpochCounter:
    def test_starts_at_zero_and_bumps(self):
        epoch = EpochCounter()
        assert epoch.value == 0
        assert epoch.bump() == 1
        assert epoch.bump() == 2
        assert epoch.value == 2

    def test_concurrent_bumps_never_lose_updates(self):
        epoch = EpochCounter()

        def bump_many():
            for _ in range(1000):
                epoch.bump()

        threads = [threading.Thread(target=bump_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert epoch.value == 4000
