"""Concurrency stress tests: 8 readers + 1 writer against a BFS oracle.

The invariant under test is the service's core consistency guarantee:
every answer is produced together with an epoch stamp, under one
read-lock hold, so the (answer, epoch) pair must match a from-scratch
BFS oracle (:mod:`repro.baselines.search`) evaluated on the graph as it
existed at exactly that epoch.  The graph at any epoch is reconstructed
from the service's applied-op log (``record_applied=True``), which is
what makes the check exact rather than probabilistic.
"""

import threading
import time

import pytest

from repro.baselines.search import BFSBaseline
from repro.bench.trace import generate_trace
from repro.core.index import ReachabilityIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp

READERS = 8


def apply_to_graph(graph: DiGraph, op: UpdateOp) -> None:
    """Mirror one applied service op onto a plain graph (oracle state)."""
    op.apply_to_graph(graph)


@pytest.mark.parametrize("flush_threshold", [1, 6])
def test_stress_readers_vs_writer_against_bfs_oracle(flush_threshold):
    graph = random_dag(50, 130, seed=11)
    trace = generate_trace(graph, 160, seed=12, query_fraction=0.5)
    mutations = [UpdateOp.from_trace_op(op) for op in trace
                 if op.kind != "query"]
    queries = [(op.tail, op.head) for op in trace if op.kind == "query"]
    assert mutations and queries

    service = ReachabilityService(
        graph,
        cache_size=512,
        flush_threshold=flush_threshold,
        record_applied=True,
    )
    records: list[list[tuple]] = [[] for _ in range(READERS)]
    unknown = [0] * READERS

    def reader(idx: int) -> None:
        offset = idx * 5
        for round_no in range(3):
            for i in range(len(queries)):
                s, t = queries[(offset + i) % len(queries)]
                try:
                    answer, epoch = service.query_with_epoch(s, t)
                except (ReproError, KeyError):
                    unknown[idx] += 1
                    continue
                records[idx].append((s, t, answer, epoch))

    def writer() -> None:
        for i, op in enumerate(mutations):
            service.submit_update(op)
            if i % 5 == 0:
                time.sleep(0.001)  # spread writes across the read storm
        service.flush()

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(READERS)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads)

    # Reconstruct the graph at every epoch from the applied-op log.
    applied = service.applied_ops
    assert applied, "the writer must have applied something"
    oracle_graph = graph.copy()
    oracles = {0: BFSBaseline(oracle_graph)}
    for epoch, op in applied:
        apply_to_graph(oracle_graph, op)
        oracles[epoch] = BFSBaseline(oracle_graph)

    # Every recorded (answer, epoch) pair must match the oracle exactly.
    checked = set()
    for per_reader in records:
        for s, t, answer, epoch in per_reader:
            key = (s, t, answer, epoch)
            if key in checked:
                continue
            checked.add(key)
            assert answer == oracles[epoch].query(s, t), (
                f"{s}->{t} answered {answer} at epoch {epoch}"
            )
    assert checked, "readers must have recorded verifiable answers"

    # The repeated rounds over a fixed query set must have hit the cache.
    snapshot = service.snapshot()
    assert snapshot["cache"]["hits"] > 0
    assert snapshot["epoch"] == len(applied)


def test_query_batch_under_concurrent_readers_matches_single_threaded():
    # Acceptance criterion: 8 readers batch-querying concurrently get
    # byte-identical answers to a single-threaded ReachabilityIndex.
    graph = random_dag(60, 150, seed=21)
    trace = generate_trace(graph, 120, seed=22, query_fraction=0.0,
                           acyclic=True)
    service = ReachabilityService(graph, cache_size=2048, flush_threshold=4)
    for op in trace:
        service.submit_update(UpdateOp.from_trace_op(op))
    service.flush()

    plain = ReachabilityIndex(graph)
    for op in trace:
        UpdateOp.from_trace_op(op).apply(plain)

    vertices = sorted(plain.condensation.graph.vertices(), key=str)[:30]
    pairs = [(s, t) for s in vertices for t in vertices]
    expected = [plain.query(s, t) for s, t in pairs]

    results: list[list] = [None] * READERS

    def reader(idx: int) -> None:
        chunks = []
        for start in range(0, len(pairs), 100):
            chunks.extend(service.query_batch(pairs[start:start + 100]))
        results[idx] = chunks

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(READERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads)

    for idx in range(READERS):
        assert results[idx] == expected, f"reader {idx} diverged"
    # Eight readers over identical pairs: the cache must have been hot.
    assert service.snapshot()["cache"]["hit_rate"] > 0.5
