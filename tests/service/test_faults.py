"""Fault injection, quarantine, and degraded-mode serving.

Crash/recovery correctness lives in ``test_recovery.py``; this module
covers the live-process half of the robustness story: the
:class:`FaultInjector` contract itself, the retry/quarantine policy
(a poison update must never wedge the service), deadline-triggered and
audit-triggered degraded serving, and index repair via
:meth:`ReachabilityService.rebuild_index`.
"""

import threading

import pytest

from repro.baselines.search import BFSBaseline
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.service.faults import (
    CRASH_POINTS,
    NULL_INJECTOR,
    FaultInjector,
    FaultPolicy,
    InjectedCrash,
)
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp


def diamond() -> DiGraph:
    return DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestFaultInjector:
    def test_unarmed_points_are_free(self):
        injector = FaultInjector()
        for point in CRASH_POINTS:
            injector.fire(point)  # no-op when nothing armed
        # Hits are still counted — that's what makes `after=` usable.
        assert injector.hits("wal.sync") == 1

    def test_crash_raises_injected_crash_with_point(self):
        injector = FaultInjector()
        injector.arm("service.apply")
        with pytest.raises(InjectedCrash) as info:
            injector.fire("service.apply")
        assert info.value.point == "service.apply"

    def test_injected_crash_is_not_an_exception(self):
        # `except Exception` (the quarantine boundary) must not swallow
        # a simulated crash, or the crash matrix tests nothing.
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedCrash, BaseException)

    def test_after_counts_hits(self):
        injector = FaultInjector()
        injector.arm("wal.sync", after=3)
        injector.fire("wal.sync")
        injector.fire("wal.sync")
        with pytest.raises(InjectedCrash):
            injector.fire("wal.sync")
        assert injector.hits("wal.sync") == 3

    def test_times_bounds_firings(self):
        injector = FaultInjector()
        injector.arm("wal.sync", "ioerror", times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                injector.fire("wal.sync")
        injector.fire("wal.sync")  # budget spent: free again

    def test_times_zero_means_forever(self):
        injector = FaultInjector()
        injector.arm("wal.sync", "ioerror", times=0)
        for _ in range(5):
            with pytest.raises(OSError):
                injector.fire("wal.sync")

    def test_unknown_point_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("wal.append.sideways")

    def test_unknown_action_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("wal.sync", "explode")

    def test_null_injector_cannot_be_armed(self):
        with pytest.raises(ValueError):
            NULL_INJECTOR.arm("wal.sync")

    def test_reset_disarms_and_clears_counts(self):
        injector = FaultInjector()
        injector.arm("wal.sync", after=10)
        injector.fire("wal.sync")
        injector.reset()
        assert injector.hits("wal.sync") == 0
        injector.fire("wal.sync")  # disarmed


class TestFaultPolicy:
    def test_defaults_valid(self):
        policy = FaultPolicy()
        assert policy.max_retries >= 1
        assert policy.max_quarantined > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(max_quarantined=0)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_base=-0.5)


class TestQuarantine:
    def poisoned_service(self, *, times):
        injector = FaultInjector()
        policy = FaultPolicy(max_retries=2, backoff_base=0.0001)
        service = ReachabilityService(
            diamond(), injector=injector, fault_policy=policy
        )
        # Poison exactly the next apply attempt(s): with
        # flush_threshold=1 the first submitted op eats every armed
        # firing, exhausting its retry budget.
        injector.arm("service.apply", "ioerror", times=times)
        return service, injector, policy

    def test_poison_update_is_quarantined_not_applied(self):
        service, _, policy = self.poisoned_service(
            times=FaultPolicy().max_retries + 1
        )
        service.insert_vertex("e", in_neighbors=["d"])
        assert service.epoch == 0  # never took effect
        assert len(service.quarantined) == 1
        bad = service.quarantined[0]
        assert bad.op == UpdateOp.insert_vertex("e", in_neighbors=["d"])
        assert bad.attempts == policy.max_retries + 1
        assert "OSError" in bad.error  # stored as repr, not live object
        counters = service.registry.snapshot()["counters"]
        assert counters["updates.quarantined"] == 1

    def test_always_failing_update_never_blocks_the_service(self):
        # Acceptance criterion: a poison op must not wedge subsequent
        # updates or readers.
        service, injector, _ = self.poisoned_service(times=3)
        service.insert_vertex("poison")
        assert len(service.quarantined) == 1
        # Readers unaffected, immediately.
        assert service.query("a", "d") is True
        assert not service.degraded
        # Writers unaffected: the very next update applies normally.
        service.insert_vertex("e", in_neighbors=["d"])
        assert service.epoch == 1
        assert service.query("a", "e") is True

    def test_transient_failure_is_retried_to_success(self):
        service, injector, _ = self.poisoned_service(times=1)
        service.insert_vertex("e", in_neighbors=["d"])  # fails once, retried
        assert service.epoch == 1
        assert service.query("a", "e") is True
        assert len(service.quarantined) == 0

    def test_quarantine_mid_batch_spares_the_rest(self):
        injector = FaultInjector()
        policy = FaultPolicy(max_retries=1, backoff_base=0.0001)
        service = ReachabilityService(
            diamond(),
            flush_threshold=10,
            injector=injector,
            fault_policy=policy,
        )
        service.submit_update(UpdateOp.insert_vertex("e"))
        service.submit_update(UpdateOp.insert_vertex("f"))
        service.submit_update(UpdateOp.insert_vertex("g"))
        # Poison whichever op is applied second, for all its attempts.
        injector.arm("service.apply", "ioerror", after=2, times=policy.max_retries + 1)
        service.flush()
        assert len(service.quarantined) == 1
        assert service.epoch == 2  # the other two ops landed
        applied = {v for v in ("e", "f", "g") if v in service}
        assert len(applied) == 2

    def test_quarantine_is_bounded(self):
        injector = FaultInjector()
        policy = FaultPolicy(
            max_retries=0, backoff_base=0.0, max_quarantined=2
        )
        service = ReachabilityService(
            diamond(), injector=injector, fault_policy=policy
        )
        injector.arm("service.apply", "ioerror", times=0)
        for i in range(5):
            service.insert_vertex(f"v{i}")
        assert len(service.quarantined) == 2  # deque bounded, newest kept
        assert service.quarantined[-1].op == UpdateOp.insert_vertex("v4")


class TestDegradedMode:
    def test_manual_degraded_answers_from_mirror(self):
        service = ReachabilityService(diamond())
        service.enter_degraded()
        assert service.degraded
        assert service.query("a", "d") is True
        assert service.query("d", "a") is False
        counters = service.registry.snapshot()["counters"]
        assert counters["degraded.queries"] == 2
        service.exit_degraded()
        assert not service.degraded

    def test_degraded_matches_bfs_on_random_graph(self):
        graph = random_dag(30, 80, seed=3)
        service = ReachabilityService(graph)
        oracle = BFSBaseline(graph)
        service.enter_degraded()
        vertices = list(graph.vertices())[:8]
        for s in vertices:
            for t in vertices:
                assert service.query(s, t) == oracle.query(s, t), (s, t)

    def test_degraded_batch_and_contains(self):
        service = ReachabilityService(diamond())
        service.enter_degraded()
        assert service.query_batch([("a", "d"), ("d", "a")]) == [True, False]
        assert "a" in service
        assert "ghost" not in service

    def test_degraded_tracks_writes(self):
        # Updates keep flowing while readers are on the BFS path, and
        # the mirror they read reflects them immediately.
        service = ReachabilityService(diamond())
        service.enter_degraded()
        service.insert_vertex("e", in_neighbors=["d"])
        assert service.query("a", "e") is True
        service.delete_vertex("e")
        assert "e" not in service

    def test_deadline_expiry_falls_back_to_mirror(self):
        service = ReachabilityService(diamond(), query_deadline=0.05)
        service._rwlock.acquire_write()  # a stuck writer
        try:
            # Not flagged degraded, but the read lock is unobtainable:
            # the deadline routes the query to the mirror.
            assert service.query("a", "d") is True
            counters = service.registry.snapshot()["counters"]
            assert counters["degraded.queries"] == 1
        finally:
            service._rwlock.release_write()
        # Lock free again: back on the indexed path.
        assert service.query("d", "a") is False
        counters = service.registry.snapshot()["counters"]
        assert counters["degraded.queries"] == 1

    def test_metrics_scrape_survives_stuck_writer(self):
        # Scraping is how you *notice* a stuck writer, so the gauge
        # callbacks must not park behind the write lock themselves.
        service = ReachabilityService(diamond())
        service.registry.snapshot()  # warm the size-gauge cache
        service._rwlock.acquire_write()
        try:
            gauges = service.registry.snapshot()["gauges"]
            assert gauges["index.num_vertices"] == 4
            assert gauges["index.size"] >= 0
        finally:
            service._rwlock.release_write()

    def test_degraded_gauge_exported(self):
        service = ReachabilityService(diamond())
        assert service.registry.snapshot()["gauges"]["service.degraded"] == 0
        service.enter_degraded()
        assert service.registry.snapshot()["gauges"]["service.degraded"] == 1


class TestSelfAuditAndRebuild:
    def chain_service(self):
        return ReachabilityService(DiGraph(edges=[("a", "b"), ("b", "c")]))

    def test_healthy_index_passes(self):
        service = self.chain_service()
        assert service.self_audit(50) is True
        assert not service.degraded

    def test_corrupt_index_detected_and_degraded(self):
        service = self.chain_service()
        # Sabotage the index behind the service's back: the mirror still
        # has a->b, so Definition 1 is violated for (a, b) and (a, c).
        UpdateOp.delete_edge("a", "b").apply(service._index)
        assert service.self_audit(100) is False
        assert service.degraded
        counters = service.registry.snapshot()["counters"]
        assert counters["service.audit_failures"] == 1
        # Degraded readers get the *correct* answer meanwhile.
        assert service.query("a", "c") is True

    def test_rebuild_repairs_and_exits_degraded(self):
        service = self.chain_service()
        UpdateOp.delete_edge("a", "b").apply(service._index)
        service.self_audit(100)
        assert service.degraded
        epoch_before = service.epoch
        service.rebuild_index()
        assert not service.degraded
        assert service.epoch == epoch_before + 1
        assert service.query("a", "c") is True  # indexed path again
        assert service.self_audit(100) is True

    def test_audit_interval_runs_automatically(self):
        service = ReachabilityService(
            diamond(), audit_interval=2, audit_samples=8
        )
        service.insert_vertex("e")
        service.insert_vertex("f")  # second flush triggers the audit
        counters = service.registry.snapshot()["counters"]
        assert counters["service.audits"] >= 1

    def test_audit_concurrent_with_readers(self):
        # The audit takes the flush mutex, not the read lock exclusively:
        # readers must keep flowing while it runs.
        graph = random_dag(40, 100, seed=6)
        service = ReachabilityService(graph)
        errors = []
        stop = threading.Event()

        def reader():
            vertices = list(graph.vertices())
            try:
                while not stop.is_set():
                    s, t = vertices[0], vertices[-1]
                    service.query(s, t)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(5):
                assert service.self_audit(16) is True
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
