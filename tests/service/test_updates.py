"""Tests for the coalescing update queue and UpdateOp."""

import pytest

from repro.bench.trace import TraceOp
from repro.core.index import ReachabilityIndex
from repro.errors import WorkloadError
from repro.graph.digraph import DiGraph
from repro.service.updates import CoalescingUpdateQueue, UpdateOp


class TestUpdateOp:
    def test_constructors(self):
        op = UpdateOp.insert_vertex("v", ["a"], ["b"])
        assert (op.kind, op.vertex, op.ins, op.outs) == (
            "insert_vertex", "v", ("a",), ("b",)
        )
        assert UpdateOp.delete_vertex("v").kind == "delete_vertex"
        assert UpdateOp.insert_edge(1, 2).tail == 1
        assert UpdateOp.delete_edge(1, 2).head == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            UpdateOp("query", tail=1, head=2)

    def test_legacy_short_kinds_normalize(self):
        # v1 encodings (WAL files, old wire clients) used trace-style
        # short kinds; constructing with one must yield the canonical op.
        assert UpdateOp("addv", vertex="v") == UpdateOp.insert_vertex("v")
        assert UpdateOp("delv", vertex="v").kind == "delete_vertex"
        assert UpdateOp("adde", tail=1, head=2) == UpdateOp.insert_edge(1, 2)
        assert UpdateOp("dele", tail=1, head=2).kind == "delete_edge"

    def test_from_trace_op(self):
        op = UpdateOp.from_trace_op(TraceOp("addv", vertex="x", ins=(1,)))
        assert op.kind == "insert_vertex" and op.ins == (1,)
        with pytest.raises(WorkloadError):
            UpdateOp.from_trace_op(TraceOp("query", tail=1, head=2))

    def test_apply_runs_the_right_method(self):
        idx = ReachabilityIndex(DiGraph(vertices=[1, 2]))
        UpdateOp.insert_edge(1, 2).apply(idx)
        assert idx.query(1, 2)
        UpdateOp.delete_edge(1, 2).apply(idx)
        assert not idx.query(1, 2)
        UpdateOp.insert_vertex(3, in_neighbors=[2]).apply(idx)
        assert idx.query(2, 3)
        UpdateOp.delete_vertex(3).apply(idx)
        assert 3 not in idx


class TestCoalescing:
    def test_plain_fifo_when_nothing_cancels(self):
        queue = CoalescingUpdateQueue()
        ops = [
            UpdateOp.insert_vertex("a"),
            UpdateOp.insert_edge(1, 2),
            UpdateOp.delete_vertex("z"),
        ]
        for op in ops:
            assert queue.submit(op) == 0
        assert queue.drain() == ops
        assert queue.drain() == []

    def test_insert_then_delete_vertex_cancels(self):
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.insert_vertex("v", ["a"]))
        assert queue.submit(UpdateOp.delete_vertex("v")) == 2
        assert len(queue) == 0
        assert queue.stats()["coalesced"] == 2

    def test_dependent_edge_ops_dropped_with_the_vertex(self):
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.insert_vertex("v"))
        queue.submit(UpdateOp.insert_edge("a", "v"))
        queue.submit(UpdateOp.insert_edge("v", "b"))
        queue.submit(UpdateOp.insert_edge("a", "b"))  # unrelated, survives
        assert queue.submit(UpdateOp.delete_vertex("v")) == 4
        assert queue.drain() == [UpdateOp.insert_edge("a", "b")]

    def test_pending_neighbor_reference_pins_the_insertion(self):
        # insert_vertex w depends on v existing: the pair must NOT cancel.
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.insert_vertex("v"))
        queue.submit(UpdateOp.insert_vertex("w", in_neighbors=["v"]))
        assert queue.submit(UpdateOp.delete_vertex("v")) == 0
        assert [op.kind for op in queue.drain()] == [
            "insert_vertex", "insert_vertex", "delete_vertex"
        ]

    def test_earlier_pending_delete_blocks_cancellation(self):
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.delete_vertex("v"))
        assert queue.submit(UpdateOp.delete_vertex("v")) == 0
        assert len(queue) == 2

    def test_delete_then_insert_vertex_not_coalesced(self):
        # delete then insert vertex is NOT a no-op (the new vertex has no edges).
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.delete_vertex("v"))
        assert queue.submit(UpdateOp.insert_vertex("v")) == 0
        assert len(queue) == 2

    def test_insert_then_delete_edge_cancels(self):
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.insert_edge(1, 2))
        assert queue.submit(UpdateOp.delete_edge(1, 2)) == 2
        assert len(queue) == 0

    def test_edge_cancel_blocked_by_endpoint_vertex_op(self):
        # delete_vertex 2 between the edge pair already removed the edge; the
        # stream is only valid if left alone, so no cancellation.
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.insert_edge(1, 2))
        queue.submit(UpdateOp.delete_vertex(2))
        assert queue.submit(UpdateOp.delete_edge(1, 2)) == 0
        assert len(queue) == 3

    def test_edge_cancel_skips_unrelated_ops(self):
        queue = CoalescingUpdateQueue()
        queue.submit(UpdateOp.insert_edge(1, 2))
        queue.submit(UpdateOp.insert_edge(3, 4))
        assert queue.submit(UpdateOp.delete_edge(1, 2)) == 2
        assert queue.drain() == [UpdateOp.insert_edge(3, 4)]


class TestCoalescingPreservesSemantics:
    def test_drained_batch_reaches_same_state_as_sequential(self):
        # Apply a redundant stream both ways; final graphs must agree.
        stream = [
            UpdateOp.insert_vertex("x", in_neighbors=[1]),
            UpdateOp.insert_edge(1, 2),
            UpdateOp.insert_edge("x", 2),
            UpdateOp.delete_vertex("x"),
            UpdateOp.insert_edge(2, 3),
            UpdateOp.delete_edge(2, 3),
            UpdateOp.insert_vertex("y", out_neighbors=[3]),
        ]
        base = DiGraph(vertices=[1, 2, 3])

        sequential = ReachabilityIndex(base)
        for op in stream:
            op.apply(sequential)

        queue = CoalescingUpdateQueue()
        for op in stream:
            queue.submit(op)
        batch = queue.drain()
        assert len(batch) < len(stream)  # something actually coalesced
        coalesced = ReachabilityIndex(base)
        for op in batch:
            op.apply(coalesced)

        vertices = [1, 2, 3, "y"]
        for s in vertices:
            for t in vertices:
                assert sequential.query(s, t) == coalesced.query(s, t), (s, t)
