"""Deduplication guarantees of ``query_batch`` under concurrent submitters.

The contract the network batcher builds on: within one ``query_batch``
call, each distinct pair probes the index at most once and every
duplicate fans out the same answer; with the epoch-stamped cache on,
at most one probe per distinct pair *per epoch* across calls.
"""

import threading

import pytest

from repro.graph.generators import random_dag
from repro.graph.traversal import bidirectional_reachable
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp


def make_service(dag, **kwargs):
    return ReachabilityService(dag.copy(), **kwargs)


def install_probe_counter(service):
    """Count index probes by wrapping the instance's query method."""
    counts = {}
    lock = threading.Lock()
    real_query = service._index.query

    def counting_query(s, t):
        with lock:
            counts[(s, t)] = counts.get((s, t), 0) + 1
        return real_query(s, t)

    service._index.query = counting_query
    return counts


@pytest.fixture(scope="module")
def dag():
    return random_dag(60, 150, seed=23)


class TestPerBatchDedup:
    """cache_size=0 isolates the per-call dedup from the cache."""

    def test_duplicates_probe_once_per_call(self, dag):
        service = make_service(dag, cache_size=0)
        counts = install_probe_counter(service)
        pairs = [(0, 10), (10, 20), (0, 10), (0, 10), (10, 20), (5, 5)]
        answers = service.query_batch(pairs)
        assert answers == [
            bidirectional_reachable(dag, s, t) for s, t in pairs
        ]
        assert counts == {(0, 10): 1, (10, 20): 1, (5, 5): 1}

    def test_concurrent_submitters_probe_distinct_per_call(self, dag):
        service = make_service(dag, cache_size=0)
        counts = install_probe_counter(service)
        per_thread = {
            "a": [(0, 10), (10, 20), (0, 10)],
            "b": [(10, 20), (20, 30), (10, 20), (20, 30)],
            "c": [(30, 40), (0, 10), (30, 40)],
        }
        results = {}
        errors = []
        barrier = threading.Barrier(len(per_thread))

        def submit(name, pairs):
            try:
                barrier.wait()
                for _ in range(5):
                    results[name] = service.query_batch(pairs)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=submit, args=item)
            for item in per_thread.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        # Fan-out: each caller sees its own order, duplicates included.
        for name, pairs in per_thread.items():
            assert results[name] == [
                bidirectional_reachable(dag, s, t) for s, t in pairs
            ]
        # Without a cache, each of the 5 calls per thread probes its
        # *distinct* pairs exactly once: total per pair == number of
        # calls whose batch contains it.
        expected = {}
        for pairs in per_thread.values():
            for pair in set(pairs):
                expected[pair] = expected.get(pair, 0) + 5
        assert counts == expected


class TestPerEpochDedup:
    """With the cache on, one probe per distinct pair per epoch."""

    def test_concurrent_repeats_probe_once_total(self, dag):
        service = make_service(dag, cache_size=4096)
        # Warm every pair once (sequentially — concurrent *misses* may
        # race to probe; the guarantee across threads is per-epoch only
        # after a pair is cached, which the network batcher serializes).
        pairs = [(i, i + 15) for i in range(0, 40, 5)]
        service.query_batch(pairs)
        counts = install_probe_counter(service)

        errors = []
        barrier = threading.Barrier(4)

        def submit():
            try:
                barrier.wait()
                for _ in range(10):
                    service.query_batch(pairs)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert counts == {}, f"cached pairs re-probed: {counts}"

    def test_epoch_bump_invalidates_exactly_once(self, dag):
        service = make_service(dag, cache_size=4096)
        pairs = [(0, 10), (10, 20), (20, 30)]
        service.query_batch(pairs)
        counts = install_probe_counter(service)

        service.submit_update(UpdateOp.insert_vertex("bump"))
        service.flush()
        assert service.epoch == 1

        service.query_batch(pairs + pairs)  # duplicates again
        assert counts == {pair: 1 for pair in pairs}
        service.query_batch(pairs)  # same epoch: all cache hits
        assert counts == {pair: 1 for pair in pairs}
