"""Unit tests for the durability layer: WAL, checkpoints, recovery.

The crash *matrix* (every named crash point against a BFS oracle) lives
in ``test_recovery.py``; here we pin down each component's contract in
isolation: record round-trips, torn-tail truncation, sequence-number
monotonicity across trims, atomic checkpoint writes with corrupt-file
fallback, and the checkpoint-plus-WAL-suffix composition of
``recover_state``.
"""

import os

import pytest

from repro.errors import SerializationError
from repro.graph.digraph import DiGraph
from repro.service.durability import (
    CheckpointStore,
    DurabilityManager,
    WriteAheadLog,
    recover_state,
)
from repro.service.faults import FaultInjector, InjectedCrash
from repro.service.updates import UpdateOp


def some_ops():
    return [
        UpdateOp.insert_vertex("a"),
        UpdateOp.insert_vertex("b", in_neighbors=["a"]),
        UpdateOp.insert_edge("a", "b"),
        UpdateOp.delete_edge("a", "b"),
        UpdateOp.delete_vertex("b"),
    ]


class TestWriteAheadLog:
    def test_append_assigns_consecutive_seqs(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            seqs = [wal.append(op) for op in some_ops()]
        assert seqs == [1, 2, 3, 4, 5]

    def test_records_round_trip(self, tmp_path):
        ops = some_ops()
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            for op in ops:
                wal.append(op)
            wal.sync()
        reopened = WriteAheadLog(tmp_path / "wal.log")
        assert reopened.records() == list(enumerate(ops, start=1))
        assert reopened.last_seq == len(ops)
        assert reopened.truncated_bytes == 0
        reopened.close()

    def test_tuple_vertices_survive_the_wire(self, tmp_path):
        op = UpdateOp.insert_vertex(("ns", 7), in_neighbors=[("ns", 1)])
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append(op)
        [(_, back)] = WriteAheadLog(tmp_path / "wal.log").records()
        assert back == op

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for op in some_ops():
                wal.append(op)
        # Tear the last record: chop off its final 3 bytes.
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        wal = WriteAheadLog(path)
        assert wal.truncated_bytes > 0
        assert wal.last_seq == 4
        assert [s for s, _ in wal.records()] == [1, 2, 3, 4]
        # The log must be appendable again, continuing the sequence.
        assert wal.append(UpdateOp.insert_vertex("z")) == 5
        wal.close()

    def test_bitflip_truncates_from_the_flip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for op in some_ops():
                wal.append(op)
        blob = bytearray(path.read_bytes())
        blob[-4] ^= 0xFF  # corrupt the last record's payload
        path.write_bytes(bytes(blob))
        wal = WriteAheadLog(path)
        assert wal.last_seq == 4
        wal.close()

    def test_injected_torn_write_recovers(self, tmp_path):
        path = tmp_path / "wal.log"
        injector = FaultInjector()
        wal = WriteAheadLog(path, injector=injector)
        wal.append(UpdateOp.insert_vertex("a"))
        injector.arm("wal.append.torn", "torn")
        with pytest.raises(InjectedCrash):
            wal.append(UpdateOp.insert_vertex("b"))
        # "Restart": the half-written record must be truncated away.
        recovered = WriteAheadLog(path)
        assert recovered.truncated_bytes > 0
        assert recovered.records() == [(1, UpdateOp.insert_vertex("a"))]
        recovered.close()

    def test_truncate_through_preserves_seq_monotonicity(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for op in some_ops():
            wal.append(op)
        assert wal.truncate_through(3) == 2  # records 4 and 5 survive
        assert [s for s, _ in wal.records()] == [4, 5]
        wal.close()
        # Reopening must not reset the sequence counter.
        reopened = WriteAheadLog(path)
        assert reopened.last_seq == 5
        assert reopened.append(UpdateOp.insert_vertex("z")) == 6
        reopened.close()

    def test_truncate_through_everything(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for op in some_ops():
            wal.append(op)
        wal.truncate_through(5)
        assert wal.records() == []
        wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.last_seq == 5  # carried by the header's base seq
        reopened.close()

    def test_fsync_policies(self, tmp_path):
        for policy, expect_fsyncs in [("always", 2), ("batch", 1), ("never", 0)]:
            wal = WriteAheadLog(tmp_path / f"{policy}.log", fsync=policy)
            wal.append(UpdateOp.insert_vertex("a"))
            wal.append(UpdateOp.insert_vertex("b"))
            wal.sync()
            # "always" syncs per append (the batch-end sync finds nothing
            # new but still counts); "batch" once; "never" never.
            assert wal.fsyncs >= expect_fsyncs, policy
            if policy == "never":
                assert wal.fsyncs == 0
            wal.close()

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_not_a_wal_rejected(self, tmp_path):
        path = tmp_path / "bogus.log"
        path.write_bytes(b"definitely not a WAL, much longer than a header")
        with pytest.raises(SerializationError):
            WriteAheadLog(path)

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(SerializationError):
            wal.append(UpdateOp.insert_vertex("a"))


class TestCheckpointStore:
    def graph(self):
        return DiGraph(edges=[("a", "b"), ("b", "c")])

    def test_write_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(self.graph(), {"wal_seq": 7, "epoch": 3})
        graph, meta, path = store.load_latest()
        assert graph == self.graph()
        assert meta["wal_seq"] == 7 and meta["epoch"] == 3
        assert path.name == "ckpt-000000000007.tolc"

    def test_newest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.write(DiGraph(vertices=["old"]), {"wal_seq": 1})
        store.write(self.graph(), {"wal_seq": 9})
        graph, meta, _ = store.load_latest()
        assert meta["wal_seq"] == 9
        assert graph == self.graph()

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.write(self.graph(), {"wal_seq": 1})
        newest = store.write(DiGraph(vertices=["new"]), {"wal_seq": 5})
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))
        graph, meta, path = store.load_latest()
        assert meta["wal_seq"] == 1
        assert graph == self.graph()
        assert path.name.endswith("000001.tolc")

    def test_all_corrupt_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        p = store.write(self.graph(), {"wal_seq": 1})
        p.write_bytes(b"garbage")
        assert store.load_latest() is None

    def test_crash_before_rename_leaves_old_checkpoint_live(self, tmp_path):
        injector = FaultInjector()
        store = CheckpointStore(tmp_path, injector=injector, keep=3)
        store.write(self.graph(), {"wal_seq": 1})
        injector.arm("checkpoint.rename")
        with pytest.raises(InjectedCrash):
            store.write(DiGraph(vertices=["half"]), {"wal_seq": 5})
        # The temp file must not shadow the good checkpoint.
        fresh = CheckpointStore(tmp_path)
        _, meta, _ = fresh.load_latest()
        assert meta["wal_seq"] == 1
        # And the next successful write cleans the stray temp file.
        fresh.write(self.graph(), {"wal_seq": 6})
        assert not list(tmp_path.glob("*.tmp"))

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for seq in (1, 2, 3, 4):
            store.write(self.graph(), {"wal_seq": seq})
        kept = [CheckpointStore.seq_of(p) for p in store.paths()]
        assert kept == [3, 4]


class TestDurabilityManager:
    def test_checkpoint_cadence_and_trim(self, tmp_path):
        mgr = DurabilityManager(tmp_path, checkpoint_every=3, fsync="never")
        graph = DiGraph()
        for i in range(5):
            op = UpdateOp.insert_vertex(i)
            mgr.wal.append(op)
            op.apply_to_graph(graph)
            mgr.maybe_checkpoint(graph, {"wal_seq": mgr.wal.last_seq})
        # Threshold 3: one checkpoint at seq 3, suffix 4..5 still in WAL.
        assert mgr.checkpointed_seq == 3
        assert [s for s, _ in mgr.wal.records()] == [4, 5]
        assert len(mgr.checkpoints.paths()) == 1
        mgr.close()

    def test_reopen_reads_checkpoint_coverage(self, tmp_path):
        mgr = DurabilityManager(tmp_path, checkpoint_every=0, fsync="never")
        mgr.log_batch([UpdateOp.insert_vertex("a")])
        mgr.checkpoint(DiGraph(vertices=["a"]), {})
        mgr.close()
        again = DurabilityManager(tmp_path, fsync="never")
        assert again.checkpointed_seq == 1
        assert again.wal.last_seq == 1
        again.close()


class TestRecoverState:
    def test_empty_directory_recovers_empty_graph(self, tmp_path):
        report = recover_state(tmp_path)
        assert report.graph.num_vertices == 0
        assert report.replayed == 0
        assert report.checkpoint_path is None

    def test_checkpoint_plus_wal_suffix(self, tmp_path):
        mgr = DurabilityManager(tmp_path, checkpoint_every=0, fsync="never")
        graph = DiGraph()
        ops = [
            UpdateOp.insert_vertex("a"),
            UpdateOp.insert_vertex("b", in_neighbors=["a"]),
        ]
        for op in ops:
            mgr.wal.append(op)
            op.apply_to_graph(graph)
        mgr.checkpoint(graph, {})
        # Two more ops after the checkpoint: the replayed suffix.
        for op in [UpdateOp.insert_edge("b", "a"), UpdateOp.insert_vertex("c")]:
            mgr.wal.append(op)
        mgr.close()

        report = recover_state(tmp_path)
        assert report.checkpoint_seq == 2
        assert report.replayed == 2
        expected = DiGraph(edges=[("a", "b"), ("b", "a")], vertices=["c"])
        assert report.graph == expected
        assert report.last_seq == 4

    def test_invalid_replay_records_are_skipped(self, tmp_path):
        mgr = DurabilityManager(tmp_path, fsync="never")
        mgr.wal.append(UpdateOp.insert_vertex("a"))
        mgr.wal.append(UpdateOp.delete_vertex("ghost"))  # never applied live
        mgr.wal.append(UpdateOp.insert_vertex("b"))
        mgr.close()
        report = recover_state(tmp_path)
        assert report.replayed == 2
        assert report.skipped == 1
        assert sorted(report.graph.vertices()) == ["a", "b"]

    def test_recovery_is_idempotent(self, tmp_path):
        mgr = DurabilityManager(tmp_path, fsync="never")
        for op in some_ops():
            mgr.wal.append(op)
        mgr.close()
        first = recover_state(tmp_path)
        second = recover_state(tmp_path)
        assert first.graph == second.graph
        assert first.last_seq == second.last_seq


class TestWalOsFailures:
    def test_injected_ioerror_on_sync(self, tmp_path):
        injector = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.log", injector=injector)
        wal.append(UpdateOp.insert_vertex("a"))
        injector.arm("wal.sync", "ioerror")
        with pytest.raises(OSError):
            wal.sync()
        # The record itself is intact.
        assert len(wal.records()) == 1
        wal.close()

    def test_directory_created_on_demand(self, tmp_path):
        nested = tmp_path / "deep" / "state"
        wal = WriteAheadLog(nested / "wal.log")
        wal.append(UpdateOp.insert_vertex("a"))
        wal.close()
        assert os.path.exists(nested / "wal.log")
