"""Tests for the Dagger dynamic interval index."""

import random


from repro.baselines.dagger import DaggerIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reachable


def assert_all_pairs(idx, graph):
    for s in graph.vertices():
        for t in graph.vertices():
            assert idx.query(s, t) == bidirectional_reachable(graph, s, t), (s, t)


class TestStatic:
    def test_dag(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (1, 4)])
        idx = DaggerIndex(g)
        assert_all_pairs(idx, g)

    def test_cyclic(self):
        g = DiGraph(edges=[(1, 2), (2, 1), (2, 3)])
        idx = DaggerIndex(g)
        assert idx.query(1, 3)
        assert idx.query(2, 1)
        assert not idx.query(3, 1)

    def test_contains(self):
        idx = DaggerIndex(DiGraph(vertices=["v"]))
        assert "v" in idx and "w" not in idx

    def test_size_bytes(self):
        idx = DaggerIndex(DiGraph(vertices=range(8)), num_traversals=2)
        assert idx.size_bytes() == 8 * 2 * 8


class TestUpdates:
    def test_insert_chain_tail(self):
        idx = DaggerIndex(DiGraph(edges=[(1, 2)]))
        idx.insert_vertex(3, in_neighbors=[2])
        assert idx.query(1, 3)

    def test_insert_chain_head(self):
        idx = DaggerIndex(DiGraph(edges=[(1, 2)]))
        idx.insert_vertex(0, out_neighbors=[1])
        assert idx.query(0, 2)
        assert not idx.query(2, 0)

    def test_delete(self):
        idx = DaggerIndex(DiGraph(edges=[(1, 2), (2, 3)]))
        idx.delete_vertex(2)
        assert not idx.query(1, 3)

    def test_edge_merge_and_split(self):
        idx = DaggerIndex(DiGraph(edges=[(1, 2), (2, 3)]))
        idx.insert_edge(3, 1)
        assert idx.query(3, 2)
        idx.delete_edge(3, 1)
        assert not idx.query(3, 2)

    def test_intervals_stay_sound_as_they_loosen(self):
        """After heavy churn queries remain exact (just slower)."""
        r = random.Random(5)
        g = DiGraph(vertices=range(8))
        for i in range(8):
            for j in range(8):
                if i != j and r.random() < 0.2:
                    g.add_edge_if_absent(i, j)
        idx = DaggerIndex(g, seed=5)
        live = g.copy()
        nxt = 8
        for _ in range(25):
            roll = r.random()
            if roll < 0.3 and live.num_vertices > 1:
                v = r.choice(list(live.vertices()))
                live.remove_vertex(v)
                idx.delete_vertex(v)
            elif roll < 0.6:
                pairs = [
                    (a, b)
                    for a in live.vertices()
                    for b in live.vertices()
                    if a != b and not live.has_edge(a, b)
                ]
                if pairs:
                    a, b = r.choice(pairs)
                    live.add_edge(a, b)
                    idx.insert_edge(a, b)
            else:
                verts = list(live.vertices())
                ins = [x for x in verts if r.random() < 0.3]
                outs = [x for x in verts if r.random() < 0.3]
                live.add_vertex_if_absent(nxt)
                for u in ins:
                    live.add_edge(u, nxt)
                for w in outs:
                    live.add_edge(nxt, w)
                idx.insert_vertex(nxt, ins, outs)
                nxt += 1
            assert_all_pairs(idx, live)


class TestDegradation:
    """The paper's core observation about Dagger: updates loosen intervals,
    so query pruning decays toward plain DFS."""

    def test_interval_quality_decays_after_churn(self):
        from repro.graph.generators import random_layered_dag

        g = random_layered_dag(300, 2.0, seed=9)
        fresh = DaggerIndex(g, seed=9)
        churned = DaggerIndex(g, seed=9)

        r = random.Random(9)
        victims = r.sample(list(g.vertices()), 60)
        adjacency = {}
        live = g.copy()
        for v in victims:
            adjacency[v] = (live.in_neighbors(v), live.out_neighbors(v))
            live.remove_vertex(v)
            churned.delete_vertex(v)
        for v in reversed(victims):
            ins = [u for u in adjacency[v][0] if u in live]
            outs = [w for w in adjacency[v][1] if w in live]
            churned.insert_vertex(v, ins, outs)
            live.add_vertex(v)
            for u in ins:
                live.add_edge(u, v)
            for w in outs:
                live.add_edge(v, w)

        def pruning_power(idx):
            rr = random.Random(1)
            vs = list(g.vertices())
            hits = 0
            total = 0
            for _ in range(400):
                s, t = rr.choice(vs), rr.choice(vs)
                cs, ct = idx._cond.component(s), idx._cond.component(t)
                if cs != ct and not bidirectional_reachable(g, s, t):
                    total += 1
                    if not idx._contains(cs, ct):
                        hits += 1
            return hits / max(total, 1)

        assert pruning_power(churned) <= pruning_power(fresh)
        assert_all_pairs(churned, g)
