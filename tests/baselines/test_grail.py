"""Tests for the GRAIL interval index."""

import pytest
from hypothesis import given

from repro.baselines.grail import GrailIndex
from repro.core.reference import descendants_map
from repro.errors import NotADagError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_layered_dag

from ..conftest import small_dags


class TestBasics:
    def test_chain(self):
        idx = GrailIndex(DiGraph(edges=[(1, 2), (2, 3)]))
        assert idx.query(1, 3)
        assert not idx.query(3, 1)
        assert idx.query(2, 2)

    def test_cycle_rejected(self):
        with pytest.raises(NotADagError):
            GrailIndex(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_interval_containment_invariant(self):
        g = random_dag(40, 150, seed=2)
        idx = GrailIndex(g, num_traversals=4, seed=2)
        for tail, head in g.edges():
            assert idx._contains(tail, head)

    def test_size_scales_with_traversals(self):
        g = DiGraph(vertices=range(10))
        assert GrailIndex(g, num_traversals=5).size_bytes() == 10 * 5 * 8

    def test_contains_protocol(self):
        idx = GrailIndex(DiGraph(vertices=[1]))
        assert 1 in idx and 2 not in idx

    def test_forest_roots(self):
        # Two disjoint chains: both must be fully labeled.
        g = DiGraph(edges=[(1, 2), (10, 11)])
        idx = GrailIndex(g)
        assert idx.query(1, 2) and idx.query(10, 11)
        assert not idx.query(1, 11)


@given(small_dags())
def test_matches_reachability(graph):
    idx = GrailIndex(graph, seed=7)
    desc = descendants_map(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            assert idx.query(s, t) == (s == t or t in desc[s])


def test_pruning_actually_prunes():
    """On a layered DAG, negative queries should rarely need a full DFS."""
    g = random_layered_dag(300, 3.0, seed=3)
    idx = GrailIndex(g, num_traversals=3, seed=3)
    desc = descendants_map(g)
    import random

    r = random.Random(0)
    vs = list(g.vertices())
    pruned_immediately = 0
    negatives = 0
    for _ in range(500):
        s, t = r.choice(vs), r.choice(vs)
        if s != t and t not in desc[s]:
            negatives += 1
            if not idx._contains(s, t):
                pruned_immediately += 1
    assert negatives > 0
    assert pruned_immediately / negatives > 0.5
