"""Tests for the tree-cover compressed transitive closure."""

import pytest
from hypothesis import given

from repro.baselines.transitive_closure import TransitiveClosureIndex
from repro.baselines.tree_cover import TreeCoverIndex, _merge_intervals
from repro.errors import NotADagError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree_dag

from ..conftest import small_dags


class TestMergeIntervals:
    def test_empty(self):
        assert _merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert _merge_intervals([(5, 6), (1, 2)]) == [(1, 2), (5, 6)]

    def test_overlap_merged(self):
        assert _merge_intervals([(1, 4), (3, 7)]) == [(1, 7)]

    def test_adjacent_merged(self):
        assert _merge_intervals([(1, 2), (3, 4)]) == [(1, 4)]

    def test_subsumed_dropped(self):
        assert _merge_intervals([(1, 10), (3, 5)]) == [(1, 10)]


class TestIndex:
    def test_chain(self):
        idx = TreeCoverIndex(DiGraph(edges=[(1, 2), (2, 3)]))
        assert idx.query(1, 3)
        assert not idx.query(3, 1)
        assert idx.query(2, 2)

    def test_cycle_rejected(self):
        with pytest.raises(NotADagError):
            TreeCoverIndex(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_tree_needs_one_interval_per_vertex(self):
        g = random_tree_dag(150, seed=1)
        idx = TreeCoverIndex(g)
        # On a tree the cover is exact: exactly one interval everywhere.
        assert idx.num_intervals() == 150
        assert all(len(idx.intervals(v)) == 1 for v in g.vertices())

    def test_dense_dag_costs_more(self):
        sparse = TreeCoverIndex(random_tree_dag(100, seed=2))
        dense = TreeCoverIndex(random_dag(100, 1200, seed=2))
        per_vertex_sparse = sparse.num_intervals() / 100
        per_vertex_dense = dense.num_intervals() / 100
        assert per_vertex_dense >= per_vertex_sparse

    def test_contains_and_repr(self):
        idx = TreeCoverIndex(DiGraph(vertices=[1]))
        assert 1 in idx and 2 not in idx
        assert "TreeCover" in repr(idx)
        assert idx.size_bytes() == idx.num_intervals() * 8

    def test_forest_input(self):
        g = DiGraph(edges=[(1, 2), (10, 11), (11, 12)])
        idx = TreeCoverIndex(g)
        assert idx.query(10, 12)
        assert not idx.query(1, 12)


@given(small_dags())
def test_matches_bitset_closure(graph):
    tree = TreeCoverIndex(graph)
    tc = TransitiveClosureIndex(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            assert tree.query(s, t) == tc.query(s, t), (s, t)


def test_bigger_random_cross_check():
    import random

    g = random_dag(120, 500, seed=5)
    tree = TreeCoverIndex(g)
    tc = TransitiveClosureIndex(g)
    r = random.Random(6)
    vs = list(g.vertices())
    for _ in range(2000):
        s, t = r.choice(vs), r.choice(vs)
        assert tree.query(s, t) == tc.query(s, t)
