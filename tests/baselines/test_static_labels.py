"""Tests for the TF/DL/PLL/HL builders and the independent PLL oracle."""

import pytest
from hypothesis import given

from repro.baselines.static_labels import (
    build_dl,
    build_hl,
    build_pll,
    build_tf_label,
    pruned_landmark_build,
)
from repro.core.butterfly import butterfly_build
from repro.core.order import LevelOrder
from repro.core.validation import assert_queries_correct, find_violations
from repro.graph.generators import figure1_dag, random_dag

from ..conftest import dags_with_order


@pytest.mark.parametrize(
    "builder", [build_tf_label, build_dl, build_pll, build_hl],
    ids=["tf", "dl", "pll", "hl"],
)
class TestBuilders:
    def test_valid_tol(self, builder):
        g = random_dag(18, 50, seed=3)
        idx = builder(g)
        assert find_violations(idx.graph_copy(), idx.labeling) == []

    def test_queries(self, builder):
        g = figure1_dag()
        idx = builder(g)
        assert_queries_correct(g, idx.labeling)

    def test_supports_updates(self, builder):
        g = figure1_dag()
        idx = builder(g)
        idx.insert_vertex("z", in_neighbors=["c"])
        assert idx.query("e", "z")
        idx.delete_vertex("z")
        assert "z" not in idx


def test_pll_equals_dl():
    """[17]'s equivalence claim: PLL and DL share the degree order."""
    g = random_dag(20, 70, seed=4)
    assert build_pll(g).labeling.snapshot() == build_dl(g).labeling.snapshot()


@given(dags_with_order())
def test_independent_pll_matches_butterfly(pair):
    """Two algorithmically unrelated constructions agree byte-for-byte."""
    graph, order = pair
    a = butterfly_build(graph, order)
    b = pruned_landmark_build(graph, LevelOrder(list(order)))
    assert a.snapshot() == b.snapshot()


def test_independent_pll_on_larger_graph():
    from repro.core.orders import degree_order_strategy

    g = random_dag(60, 400, seed=5)
    a = butterfly_build(g, degree_order_strategy(g))
    b = pruned_landmark_build(g, degree_order_strategy(g))
    assert a.snapshot() == b.snapshot()
