"""Tests for the bitset transitive-closure index."""

import pytest
from hypothesis import given

from repro.baselines.transitive_closure import TransitiveClosureIndex
from repro.core.reference import descendants_map
from repro.errors import NotADagError
from repro.graph.digraph import DiGraph

from ..conftest import small_dags


class TestBasics:
    def test_chain(self):
        tc = TransitiveClosureIndex(DiGraph(edges=[(1, 2), (2, 3)]))
        assert tc.query(1, 3)
        assert not tc.query(3, 1)
        assert tc.query(2, 2)

    def test_descendants(self):
        tc = TransitiveClosureIndex(DiGraph(edges=[(1, 2), (2, 3), (1, 4)]))
        assert tc.descendants(1) == {2, 3, 4}
        assert tc.descendants(3) == set()

    def test_cycle_rejected(self):
        with pytest.raises(NotADagError):
            TransitiveClosureIndex(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_unknown_vertex_raises(self):
        tc = TransitiveClosureIndex(DiGraph(vertices=[1]))
        with pytest.raises(KeyError):
            tc.query(1, 99)
        with pytest.raises(KeyError):
            tc.query(99, 99)

    def test_contains(self):
        tc = TransitiveClosureIndex(DiGraph(vertices=[1]))
        assert 1 in tc and 2 not in tc

    def test_size_is_quadratic_bits(self):
        tc = TransitiveClosureIndex(DiGraph(vertices=range(16)))
        assert tc.size_bytes() == 16 * 2  # 16 vertices * ceil(16/8) bytes


@given(small_dags())
def test_matches_reachability(graph):
    tc = TransitiveClosureIndex(graph)
    desc = descendants_map(graph)
    for s in graph.vertices():
        assert tc.descendants(s) == desc[s]
        for t in graph.vertices():
            assert tc.query(s, t) == (s == t or t in desc[s])
