"""Tests for the index-free BFS/DFS baselines."""

import pytest
from hypothesis import given

from repro.baselines.search import BFSBaseline, DFSBaseline
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reachable

from ..conftest import small_dags


@pytest.fixture(params=[BFSBaseline, DFSBaseline], ids=["bfs", "dfs"])
def baseline_cls(request):
    return request.param


class TestQueries:
    def test_positive_negative(self, baseline_cls):
        base = baseline_cls(DiGraph(edges=[(1, 2), (2, 3)]))
        assert base.query(1, 3)
        assert not base.query(3, 1)

    def test_reflexive(self, baseline_cls):
        base = baseline_cls(DiGraph(vertices=[7]))
        assert base.query(7, 7)

    def test_zero_index_size(self, baseline_cls):
        assert baseline_cls(DiGraph()).size_bytes() == 0

    def test_name(self):
        assert BFSBaseline.name == "BFS"
        assert DFSBaseline.name == "DFS"


class TestUpdates:
    def test_insert_vertex(self, baseline_cls):
        base = baseline_cls(DiGraph(edges=[(1, 2)]))
        base.insert_vertex(3, in_neighbors=[2], out_neighbors=[])
        assert base.query(1, 3)

    def test_delete_vertex(self, baseline_cls):
        base = baseline_cls(DiGraph(edges=[(1, 2), (2, 3)]))
        base.delete_vertex(2)
        assert not base.query(1, 3)

    def test_owns_its_copy(self, baseline_cls):
        g = DiGraph(edges=[(1, 2)])
        base = baseline_cls(g)
        g.remove_vertex(2)
        assert base.query(1, 2)  # baseline unaffected by caller mutation


@given(small_dags())
def test_baselines_agree_with_each_other(graph):
    bfs = BFSBaseline(graph)
    dfs = DFSBaseline(graph)
    for s in graph.vertices():
        for t in graph.vertices():
            expected = bidirectional_reachable(graph, s, t)
            assert bfs.query(s, t) == expected
            assert dfs.query(s, t) == expected
