"""Tests for the command-line interface (in-process, via cli.main)."""

import pytest

from repro.cli import EXIT_SERIALIZATION, EXIT_UNKNOWN_VERTEX, main
from repro.core.serialize import load_index
from repro.graph.io import read_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    assert main(["generate", "wiki", str(path), "--vertices", "200"]) == 0
    return path


@pytest.fixture
def index_file(graph_file, tmp_path):
    path = tmp_path / "g.tolx"
    assert main(["build", str(graph_file), str(path), "--order", "bu"]) == 0
    return path


class TestGenerate:
    def test_writes_edge_list(self, graph_file):
        graph = read_edge_list(graph_file)
        assert graph.num_vertices == 200

    def test_unknown_dataset_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "nope", str(tmp_path / "x.txt")])

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "RG5", str(a), "--vertices", "150", "--seed", "3"])
        main(["generate", "RG5", str(b), "--vertices", "150", "--seed", "3"])
        assert read_edge_list(a) == read_edge_list(b)


class TestBuild:
    def test_creates_loadable_index(self, index_file):
        index = load_index(index_file)
        assert index.num_vertices == 200

    def test_stats_printed(self, graph_file, tmp_path, capsys):
        main(["build", str(graph_file), str(tmp_path / "i.tolx")])
        out = capsys.readouterr().out
        assert "|L|=" in out and "built" in out

    def test_missing_graph_file(self, tmp_path, capsys):
        code = main(["build", str(tmp_path / "missing.txt"), str(tmp_path / "i")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_order_choices(self, graph_file, tmp_path):
        assert main([
            "build", str(graph_file), str(tmp_path / "dl.tolx"), "--order", "dl",
        ]) == 0


class TestQuery:
    def test_reachable_pair(self, index_file, capsys):
        graph = load_index(index_file).graph_copy()
        tail, head = next(iter(graph.edges()))
        assert main(["query", str(index_file), str(tail), str(head)]) == 0
        assert "reachable" in capsys.readouterr().out

    def test_witness_flag(self, index_file, capsys):
        assert main(["query", str(index_file), "0", "0", "--witness"]) == 0
        assert "witness" in capsys.readouterr().out

    def test_odd_vertex_count_rejected(self, index_file, capsys):
        assert main(["query", str(index_file), "1"]) == 2

    def test_unknown_vertex_exit_code(self, index_file, capsys):
        assert main(["query", str(index_file), "424242", "0"]) == EXIT_UNKNOWN_VERTEX
        assert "error" in capsys.readouterr().err

    def test_corrupt_index_serialization_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.tolx"
        bad.write_bytes(b"definitely not an index artifact")
        assert main(["query", str(bad), "0", "1"]) == EXIT_SERIALIZATION
        assert "error" in capsys.readouterr().err


class TestUpdate:
    def test_insert_then_query(self, index_file, capsys):
        assert main([
            "update", str(index_file), "--insert", "9999", "--in", "0",
        ]) == 0
        assert main(["query", str(index_file), "0", "9999"]) == 0
        assert "reachable" in capsys.readouterr().out

    def test_delete(self, index_file):
        assert main(["update", str(index_file), "--delete", "0"]) == 0
        index = load_index(index_file)
        assert 0 not in index

    def test_noop_rejected(self, index_file):
        assert main(["update", str(index_file)]) == 2

    def test_cycle_insert_fails_cleanly(self, index_file, capsys):
        graph = load_index(index_file).graph_copy()
        tail, head = next(iter(graph.edges()))
        code = main([
            "update", str(index_file),
            "--insert", "777", "--in", str(head), "--out", str(tail),
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStatsAndReduce:
    def test_stats(self, index_file, capsys):
        assert main(["stats", str(index_file), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "heaviest" in out and "|L|=" in out

    def test_reduce_shrinks_or_keeps(self, graph_file, tmp_path, capsys):
        path = tmp_path / "tf.tolx"
        main(["build", str(graph_file), str(path), "--order", "tf"])
        before = load_index(path).size()
        assert main(["reduce", str(path)]) == 0
        assert load_index(path).size() <= before


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "--only", "table3", "--vertices", "100"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "--only", "fig99"]) == 2


@pytest.fixture
def trace_file(graph_file, tmp_path):
    path = tmp_path / "ops.trace"
    code = main([
        "trace-generate", str(graph_file), str(path),
        "--ops", "80", "--seed", "5",
    ])
    assert code == 0
    return path


class TestMetrics:
    def test_prometheus_to_stdout(self, graph_file, trace_file, capsys):
        assert main(["metrics", str(graph_file), str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE span_tol_build_seconds histogram" in out
        assert "# TYPE service_queries_total counter" in out
        assert "cache_hit_rate" in out

    def test_json_out_with_events(self, graph_file, trace_file, tmp_path):
        import json

        out = tmp_path / "m.json"
        events = tmp_path / "ops.jsonl"
        code = main([
            "metrics", str(graph_file), str(trace_file),
            "--format", "json", "--out", str(out), "--events", str(events),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert "span.tol.build" in doc["histograms"]
        records = [
            json.loads(line) for line in events.read_text().splitlines()
        ]
        assert any(r["name"] == "tol.build.level" for r in records)
        # Tracing must not leak out of the command.
        from repro.obs import trace

        assert not trace.active()


class TestServeReplay:
    def test_metrics_out_flag(self, graph_file, trace_file, tmp_path, capsys):
        out = tmp_path / "m.prom"
        code = main([
            "serve-replay", str(graph_file), str(trace_file),
            "--readers", "2", "--metrics-out", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "# TYPE service_queries_total counter" in text
        assert "span_tol_build_seconds_count 1" in text
        assert "wrote prometheus metrics" in capsys.readouterr().out

    @pytest.mark.slow
    def test_sigint_flushes_metrics_out(self, graph_file, trace_file, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        import repro

        src_root = str(
            __import__("pathlib").Path(repro.__file__).resolve().parent.parent
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = tmp_path / "interrupted.prom"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-replay",
                str(graph_file), str(trace_file),
                "--rounds", "200000", "--metrics-out", str(out),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            time.sleep(2.5)
            proc.send_signal(signal.SIGINT)
            stdout, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 130, stdout
        assert "interrupted by signal" in stdout
        assert out.exists(), "metrics must be flushed on SIGINT"
        assert "service_queries_total" in out.read_text()


class TestServeAndLoadgenParsing:
    """Argument plumbing for the network subcommands.

    End-to-end serving runs live in tests/net/test_loadgen.py; these
    only cover CLI-level validation and error codes.
    """

    def test_serve_missing_graph_file(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "missing.txt")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_loadgen_requires_spawn_or_port(self, graph_file, capsys):
        assert main(["loadgen", str(graph_file)]) == 2
        assert "--spawn" in capsys.readouterr().err

    def test_loadgen_rejects_spawn_with_port(self, graph_file, capsys):
        code = main(["loadgen", str(graph_file), "--spawn", "--port", "1"])
        assert code == 2
