"""Tests for the multi-process load harness.

The slow tests here boot a real ``repro serve`` subprocess and drive it
with real client processes — this is the acceptance path for the
serving subsystem (aggregate qps + percentiles from >= 4 clients,
overload runs shedding while admitted answers stay correct).
"""

import json

import pytest

from repro.graph.generators import random_dag
from repro.graph.io import write_edge_list
from repro.net.protocol import PROTOCOL_VERSION
from repro.net.loadgen import (
    percentile,
    run_loadgen,
    spawned_server,
    write_bench_json,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.25) == 1.0
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 1.0) == 4.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


@pytest.fixture(scope="module")
def graph():
    return random_dag(120, 360, seed=11)


@pytest.fixture(scope="module")
def graph_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("loadgen") / "graph.txt"
    write_edge_list(graph, path)
    return path


@pytest.mark.slow
class TestLoadgenEndToEnd:
    def test_four_clients_verified(self, graph, graph_file, tmp_path):
        with spawned_server(graph_file) as server:
            result = run_loadgen(
                server.host,
                server.port,
                graph,
                clients=4,
                duration=1.5,
                batch=8,
                seed=3,
                verify=True,
            )
            exit_code = server.terminate()

        assert exit_code == 0, "SIGTERM drain must exit cleanly"
        assert result["clients"] == 4
        assert len(result["per_client"]) == 4
        assert result["totals"]["queries"] > 0
        assert result["totals"]["verify_failures"] == 0
        assert result["totals"]["errors"] == 0
        assert result["qps"] > 0
        lat = result["latency_ms"]
        assert 0 < lat["p50"] <= lat["p99"] <= lat["max"]

        artifact = write_bench_json(result, tmp_path / "BENCH_serve.json")
        loaded = json.loads(artifact.read_text())
        assert loaded["benchmark"] == "serve"
        assert loaded["protocol_version"] == PROTOCOL_VERSION
        assert set(loaded["totals"]) == {
            "queries", "requests", "shed", "errors", "unavailable",
            "stale_replies", "degraded_replies", "verify_failures",
        }
        assert loaded["availability"] == 1.0
        assert loaded["chaos"] is None
        assert {"p50", "p99", "mean", "max"} <= set(loaded["latency_ms"])

    def test_overload_sheds_but_admitted_answers_stay_correct(
        self, graph, graph_file
    ):
        args = ["--max-pending", "24", "--batch-delay", "0.02"]
        with spawned_server(graph_file, server_args=args) as server:
            result = run_loadgen(
                server.host,
                server.port,
                graph,
                clients=4,
                duration=1.5,
                batch=16,
                seed=4,
                verify=True,
            )
            server.terminate()

        assert result["totals"]["shed"] > 0, result["totals"]
        assert result["totals"]["verify_failures"] == 0
        assert result["totals"]["queries"] > 0

    def test_run_loadgen_validates_arguments(self, graph):
        with pytest.raises(ValueError):
            run_loadgen("127.0.0.1", 1, graph, clients=0)
        with pytest.raises(ValueError):
            run_loadgen("127.0.0.1", 1, graph, duration=0)
