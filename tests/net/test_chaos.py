"""Process-level chaos: the fault matrix from docs/robustness.md, live.

Every test here boots the real multi-process assembly (``repro serve
--workers``) and injects one fault from :data:`repro.net.chaos.SCENARIOS`
— either deterministically inside the writer via ``REPRO_CHAOS`` (the
kill lands at an exact crash point, not "roughly now"), or from outside
with a signal.  Three invariants hold across the whole matrix:

* **zero wrong answers** — a monotone BFS oracle bounds every reply:
  pairs reachable in the initial graph must answer ``True`` forever,
  pairs unreachable even after every planned insert must answer
  ``False`` forever, no matter which WAL suffix survived the crash;
* **reads keep flowing** — snapshot-plane queries succeed during the
  writer outage (bounded-staleness mode), only forwarded ops degrade
  to structured ``writer_unavailable`` errors;
* **bounded recovery, zero leaks** — the supervisor respawns the dead
  writer within the scenario bound, and no ``/dev/shm`` segment
  outlives its assembly (graceful sweep or boot-time janitor).
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import ReproError, WriterUnavailableError
from repro.graph.generators import random_dag
from repro.graph.io import write_edge_list
from repro.graph.traversal import bidirectional_reachable
from repro.net.chaos import CHAOS_ENV, SPENT_ENV
from repro.net.client import ReachabilityClient
from repro.net.loadgen import spawned_server
from repro.service.updates import UpdateOp
from repro.shm.control import pid_alive
from repro.shm.janitor import list_families, reap_orphans

WORKERS_ARGS = ["--workers", "2", "--publish-interval", "0.05"]

#: How long a writer failover may take end to end (SIGKILL detection,
#: respawn, WAL replay, republish) before the test calls it stuck.
RECOVERY_S = 45.0


@pytest.fixture(scope="module")
def graph():
    return random_dag(100, 300, seed=21)


@pytest.fixture(scope="module")
def graph_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "graph.txt"
    write_edge_list(graph, path)
    return path


def non_edges(graph, count):
    vertices = sorted(graph.vertices())
    out = []
    for tail in vertices:
        for head in vertices:
            if tail != head and not graph.has_edge(tail, head):
                out.append((tail, head))
                if len(out) == count:
                    return out
    return out


def reachable_pairs(graph, count):
    """Pairs reachable in *graph* — inserts can never falsify them."""
    vertices = sorted(graph.vertices())
    out = []
    for s in vertices:
        for t in vertices:
            if s != t and bidirectional_reachable(graph, s, t):
                out.append((s, t))
                if len(out) == count:
                    return out
    return out


def unreachable_pairs(graph, count):
    """Pairs unreachable in *graph* — compute against the fully mutated
    graph and no surviving insert prefix can make them ``True``."""
    vertices = sorted(graph.vertices())
    out = []
    for s in reversed(vertices):
        for t in vertices:
            if s != t and not bidirectional_reachable(graph, s, t):
                out.append((s, t))
                if len(out) == count:
                    return out
    return out


def chaos_env(spec, marker):
    """Environment for :func:`spawned_server` arming *spec* one-shot."""
    env = dict(os.environ)
    env[CHAOS_ENV] = spec
    env[SPENT_ENV] = str(marker)
    return env


def writer_stats(host, port):
    """One uncached ``stats`` round trip (forwarded to the writer)."""
    with ReachabilityClient(host, port, timeout=5.0, retries=0) as client:
        return client._call({"op": "stats"})


def wait_for_writer(host, port, *, not_pid=0, deadline_s=RECOVERY_S):
    """Poll until a live writer whose pid differs from *not_pid* answers."""
    deadline = time.monotonic() + deadline_s
    last = None
    while time.monotonic() < deadline:
        try:
            stats = writer_stats(host, port)
            pid = stats.get("writer_pid", 0)
            if pid > 0 and pid != not_pid:
                return pid, stats
        except (ReproError, OSError) as exc:
            last = exc
        time.sleep(0.05)
    raise AssertionError(
        f"no fresh writer answered within {deadline_s}s (last: {last!r})"
    )


class OracleProber(threading.Thread):
    """Continuously replay the oracle probes from a side thread.

    Forwarded ops in the main thread can block for a forward-timeout
    while the writer is a fresh corpse; this thread keeps snapshot-plane
    reads flowing right through that window, recording any wrong
    answer, any read error, and how many replies carried the
    bounded-staleness stamp.
    """

    def __init__(self, host, port, probes, expected):
        super().__init__(name="oracle-prober", daemon=True)
        self.host = host
        self.port = port
        self.probes = probes
        self.expected = expected
        self.wrong = []
        self.read_errors = []
        self.stale_replies = 0
        self.replies = 0
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                with ReachabilityClient(
                    self.host, self.port, timeout=10.0, retries=0
                ) as client:
                    reply = client.query_many(self.probes)
            except (ReproError, OSError) as exc:
                self.read_errors.append(repr(exc))
                time.sleep(0.01)
                continue
            self.replies += 1
            if reply.results != self.expected:
                self.wrong.append(reply.results)
                return
            if reply.stale_ms is not None:
                self.stale_replies += 1
            time.sleep(0.005)

    def finish(self):
        self._halt.set()
        self.join(timeout=15)


def wait_for_results(host, port, pairs, expected, *, deadline_s=30.0):
    """Poll queries until the snapshot plane converges on *expected*."""
    deadline = time.monotonic() + deadline_s
    while True:
        with ReachabilityClient(host, port, timeout=10.0) as client:
            reply = client.query_many(pairs)
        if reply.results == expected or time.monotonic() > deadline:
            return reply
        time.sleep(0.1)


@pytest.mark.slow
class TestKillWriterMidBatch:
    """SCENARIOS['kill-writer-mid-batch']: SIGKILL between WAL append
    and index apply, injected at the ``service.apply`` crash point."""

    def test_wal_replay_and_monotone_answers(self, graph, graph_file,
                                             tmp_path):
        edges = non_edges(graph, 6)
        mutated = graph.copy()
        for tail, head in edges:
            mutated.add_edge(tail, head)
        always_true = reachable_pairs(graph, 6)
        always_false = unreachable_pairs(mutated, 6)
        probes = always_true + always_false
        expected = [True] * len(always_true) + [False] * len(always_false)

        marker = tmp_path / "chaos-spent"
        env = chaos_env("service.apply:kill:after=2", marker)
        args = [*WORKERS_ARGS, "--wal", str(tmp_path / "wal")]
        with spawned_server(graph_file, server_args=args, env=env) as server:
            first_pid, _ = wait_for_writer(server.host, server.port)

            # The prober hammers the monotone oracle from a side thread
            # for the whole fault — the apply stream below can block
            # for a forward-timeout on the freshly dead writer, and the
            # outage must be observed by *reads*, not spent hidden
            # inside a hanging forward.
            prober = OracleProber(server.host, server.port, probes,
                                  expected)
            prober.start()
            try:
                # Stream the inserts.  Acks precede the batch apply —
                # the writer WAL-appends and admits, a background batch
                # loop applies, and the second applied op SIGKILLs it —
                # so ops refused during the outage are resent until the
                # respawned writer takes them.
                accepted = [False] * len(edges)
                new_pid = None
                stats = None
                deadline = time.monotonic() + RECOVERY_S
                while not (all(accepted) and new_pid is not None):
                    assert time.monotonic() < deadline, \
                        "writer never recovered"
                    for i, (tail, head) in enumerate(edges):
                        if accepted[i]:
                            continue
                        try:
                            with ReachabilityClient(
                                server.host, server.port,
                                timeout=10.0, retries=0,
                            ) as client:
                                client.apply(
                                    UpdateOp.insert_edge(tail, head)
                                )
                            accepted[i] = True
                        except (ReproError, OSError):
                            pass
                    if new_pid is None:
                        try:
                            stats = writer_stats(server.host, server.port)
                            pid = stats.get("writer_pid", 0)
                            if pid > 0 and pid != first_pid:
                                new_pid = pid
                        except (ReproError, OSError):
                            pass
                    time.sleep(0.02)
            finally:
                prober.finish()

            assert marker.exists(), "the armed kill never fired"
            assert new_pid is not None, "writer never respawned"
            assert stats["writer_restarts"] >= 1
            # Zero wrong answers, zero read errors, and the outage was
            # actually visible as bounded-staleness replies.
            assert prober.wrong == []
            assert prober.read_errors == []
            assert prober.replies > 0
            assert prober.stale_replies >= 1, \
                "no bounded-staleness reply seen in outage"

            # Acknowledged ops survived the crash: every insert is
            # eventually visible through the snapshot plane.
            reply = wait_for_results(
                server.host, server.port, edges, [True] * len(edges)
            )
            assert reply.results == [True] * len(edges)
            assert server.terminate() == 0


@pytest.mark.slow
class TestKillPublisherMidFlip:
    """SCENARIOS['kill-publisher-mid-flip']: SIGKILL while the seqlock
    sequence is odd — the narrowest window a writer death can leave
    readers stalled in."""

    def test_seqlock_repair_and_stale_serve(self, graph, graph_file,
                                            tmp_path):
        tail, head = non_edges(graph, 1)[0]
        mutated = graph.copy()
        mutated.add_edge(tail, head)
        always_true = reachable_pairs(graph, 4)
        always_false = unreachable_pairs(mutated, 4)
        probes = always_true + always_false
        expected = [True] * len(always_true) + [False] * len(always_false)

        marker = tmp_path / "chaos-spent"
        # after=2: flip #1 is the boot publish (dying there aborts the
        # whole boot by design); flip #2 is the republish our update
        # triggers — the mid-flight window that matters.
        env = chaos_env("shm.publish.flip:kill:after=2", marker)
        args = [*WORKERS_ARGS, "--wal", str(tmp_path / "wal")]
        with spawned_server(graph_file, server_args=args, env=env) as server:
            first_pid, _ = wait_for_writer(server.host, server.port)
            with ReachabilityClient(server.host, server.port) as client:
                client.apply(UpdateOp.insert_edge(tail, head))

            # The publish thread picks up the epoch change within 50ms
            # and dies mid-flip.  Readers must keep answering from the
            # last consistent generation the entire time.
            new_pid = None
            deadline = time.monotonic() + RECOVERY_S
            while time.monotonic() < deadline:
                with ReachabilityClient(
                    server.host, server.port, timeout=10.0
                ) as client:
                    assert client.query_many(probes).results == expected
                try:
                    stats = writer_stats(server.host, server.port)
                    pid = stats.get("writer_pid", 0)
                    if pid > 0 and pid != first_pid:
                        new_pid = pid
                        break
                except (ReproError, OSError):
                    pass
                time.sleep(0.05)

            assert marker.exists(), "the armed kill never fired"
            assert new_pid is not None, "writer never respawned"

            with ReachabilityClient(server.host, server.port) as client:
                snapshot = client.health()["snapshot"]
            assert snapshot["seqlock_repaired"] is True
            assert snapshot["writer_restarts"] >= 1

            # The acknowledged insert survived via the WAL and made it
            # into the successor's snapshot.
            reply = wait_for_results(
                server.host, server.port, [(tail, head)], [True]
            )
            assert reply.results == [True]
            assert server.terminate() == 0


@pytest.mark.slow
class TestStallPublisher:
    """SCENARIOS['stall-publisher']: a SIGSTOPped writer is alive but
    wedged — forwards must time out into ``writer_unavailable`` within
    the forward timeout, snapshot reads continue, SIGCONT heals without
    a restart."""

    def test_forwards_degrade_reads_continue(self, graph, graph_file):
        args = [*WORKERS_ARGS, "--forward-timeout", "1.0"]
        probes = reachable_pairs(graph, 3) + unreachable_pairs(graph, 3)
        expected = [True] * 3 + [False] * 3
        with spawned_server(graph_file, server_args=args) as server:
            pid, _ = wait_for_writer(server.host, server.port)
            os.kill(pid, signal.SIGSTOP)
            try:
                with ReachabilityClient(
                    server.host, server.port, timeout=15.0, retries=0
                ) as client:
                    # Snapshot reads are unaffected by the stall.
                    assert client.query_many(probes).results == expected
                    # Forwards hit the 1s timeout (×2: one reconnect
                    # attempt inside the worker) and come back as a
                    # structured retryable error, not a hang.
                    start = time.monotonic()
                    with pytest.raises(WriterUnavailableError) as excinfo:
                        client._call({"op": "stats"})
                    assert time.monotonic() - start < 10.0
                    assert excinfo.value.retry_after_ms > 0
            finally:
                os.kill(pid, signal.SIGCONT)

            # Healed in place: same pid, no supervisor restart.
            healed_pid, stats = wait_for_writer(server.host, server.port)
            assert healed_pid == pid
            assert stats["writer_restarts"] == 0
            assert server.terminate() == 0


@pytest.mark.slow
class TestNoLeakedSegments:
    """A kill-loop must leak nothing: graceful shutdown sweeps the
    family; a SIGKILLed supervisor's family is reaped at the next
    janitor pass."""

    def test_writer_kill_loop_then_clean_sweep(self, graph, graph_file,
                                               tmp_path):
        args = [*WORKERS_ARGS, "--wal", str(tmp_path / "wal")]
        before = set(list_families())
        with spawned_server(graph_file, server_args=args) as server:
            pid, _ = wait_for_writer(server.host, server.port)
            created = set(list_families()) - before
            assert len(created) == 1
            for round_no in (1, 2):
                os.kill(pid, signal.SIGKILL)
                pid, stats = wait_for_writer(
                    server.host, server.port, not_pid=pid
                )
                assert stats["writer_restarts"] == round_no
            pairs = reachable_pairs(graph, 3) + unreachable_pairs(graph, 3)
            with ReachabilityClient(server.host, server.port) as client:
                reply = client.query_many(pairs)
            assert reply.results == [True] * 3 + [False] * 3
            assert server.terminate() == 0
        # Two failovers' worth of segments, all swept on shutdown.
        assert set(list_families()) & created == set()

    def test_sigkilled_supervisor_is_reaped_at_next_boot(self, graph,
                                                         graph_file):
        before = set(list_families())
        with spawned_server(graph_file,
                            server_args=WORKERS_ARGS) as server:
            _, stats = wait_for_writer(server.host, server.port)
            child_pids = [w["pid"] for w in stats["workers"]]
            child_pids.append(stats["writer_pid"])
            created = set(list_families()) - before
            assert len(created) == 1
            os.kill(server.proc.pid, signal.SIGKILL)
            server.proc.wait(timeout=10)

        # The ppid watchdogs notice the orphaning and the children exit
        # on their own — nothing is left to signal them.
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and any(
            pid_alive(p) for p in child_pids
        ):
            time.sleep(0.1)
        assert not any(pid_alive(p) for p in child_pids)

        # The janitor pass every boot runs clears the dead assembly.
        # min_age=0 because the dead supervisor's resource tracker may
        # already have unlinked the control block (its crash backstop),
        # leaving a control-less family the default age gate defers.
        reap_orphans(min_age=0.0)
        assert set(list_families()) & created == set()
