"""End-to-end tests for multi-process serving (``repro serve --workers``).

Each test boots the real thing as a subprocess: a writer process plus N
reader workers sharing one listening socket and one shared-memory
snapshot.  Covered here: query correctness against a BFS oracle, the
per-worker stats/health surfaces, epoch monotonicity under a live
update stream, worker supervision (kill one, watch it respawn), and
booting from a ``repro pack`` ``.tolf`` snapshot.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.graph.generators import random_dag
from repro.graph.io import write_edge_list
from repro.graph.traversal import bidirectional_reachable
from repro.net.client import ReachabilityClient
from repro.net.loadgen import spawned_server
from repro.service.updates import UpdateOp

WORKERS_ARGS = ["--workers", "2", "--publish-interval", "0.05"]


@pytest.fixture(scope="module")
def graph():
    return random_dag(100, 300, seed=21)


@pytest.fixture(scope="module")
def graph_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("workers") / "graph.txt"
    write_edge_list(graph, path)
    return path


def oracle(graph, pairs):
    return [bidirectional_reachable(graph, s, t) for s, t in pairs]


def non_edges(graph, count):
    """Some absent (tail, head) pairs over existing vertices."""
    vertices = sorted(graph.vertices())
    out = []
    for tail in vertices:
        for head in vertices:
            if tail != head and not graph.has_edge(tail, head):
                out.append((tail, head))
                if len(out) == count:
                    return out
    return out


@pytest.mark.slow
class TestMultiProcessServing:
    def test_queries_ping_stats_health(self, graph, graph_file):
        pairs = [(0, 50), (50, 0), (3, 3), (12, 80), (99, 1), (7, 42)]
        with spawned_server(graph_file, server_args=WORKERS_ARGS) as server:
            with ReachabilityClient(server.host, server.port) as client:
                # Queries answered from the shared snapshot.
                reply = client.query_many(pairs, timings=True)
                assert reply.results == oracle(graph, pairs)
                assert reply.epoch == 0
                assert reply.degraded is False
                # The worker stamps its identity on the timing breakdown.
                assert reply.timings["worker"] in (0, 1)
                assert reply.timings["generation"] >= 1

                pong = client.ping()
                assert pong["pong"] is True
                assert pong["worker"] in (0, 1)

                # stats is forwarded to the writer and carries the
                # per-worker breakdown from the control block.
                stats = client._call({"op": "stats"})
                workers = stats["workers"]
                assert len(workers) == 2
                assert all(w["pid"] > 0 for w in workers)
                assert all(w["alive"] for w in workers)
                assert sum(w["requests"] for w in workers) >= 1

                health = client.health()
                snapshot = health["snapshot"]
                assert snapshot is not None
                assert snapshot["generation"] >= 1
                assert snapshot["bytes"] > 0
                assert snapshot["worker_restarts"] == 0
                assert len(snapshot["workers"]) == 2
            exit_code = server.terminate()
        assert exit_code == 0, "SIGTERM drain must exit cleanly"

    def test_update_stream_epoch_monotone_no_errors(self, graph, graph_file):
        edges = non_edges(graph, 6)
        mutated = graph.copy()
        with spawned_server(graph_file, server_args=WORKERS_ARGS) as server:
            with ReachabilityClient(server.host, server.port) as client:
                last_epoch = client.query_many([(0, 1)]).epoch
                for tail, head in edges:
                    accepted = client.apply(UpdateOp.insert_edge(tail, head))
                    assert accepted == 1
                    mutated.add_edge(tail, head)
                    # Interleave queries with the update stream; every
                    # reply must succeed and epochs must never go back.
                    reply = client.query_many([(tail, head), (0, 1)])
                    assert reply.epoch >= last_epoch
                    last_epoch = reply.epoch

                # Wait for the republish to surface the new reachability
                # through the snapshot plane.
                deadline = time.monotonic() + 10.0
                expected = oracle(mutated, edges)
                while time.monotonic() < deadline:
                    reply = client.query_many(edges)
                    assert reply.epoch >= last_epoch
                    last_epoch = reply.epoch
                    if reply.results == expected:
                        break
                    time.sleep(0.05)
                assert reply.results == expected
                assert last_epoch > 0
            server.terminate()

    def test_killed_worker_is_respawned(self, graph, graph_file):
        with spawned_server(graph_file, server_args=WORKERS_ARGS) as server:
            with ReachabilityClient(server.host, server.port) as client:
                victims = [
                    w["pid"] for w in client._call({"op": "stats"})["workers"]
                ]
            os.kill(victims[0], signal.SIGKILL)

            # The supervisor polls every 0.25s; wait for the restart
            # counter to tick and the replacement to come up.
            deadline = time.monotonic() + 15.0
            restarts = 0
            while time.monotonic() < deadline:
                try:
                    with ReachabilityClient(
                        server.host, server.port, timeout=5.0
                    ) as client:
                        snapshot = client.health()["snapshot"]
                    restarts = snapshot["worker_restarts"]
                    if restarts >= 1 and all(
                        w["alive"] for w in snapshot["workers"]
                    ):
                        break
                except OSError:
                    pass  # connected to the dying worker; retry
                time.sleep(0.1)
            assert restarts >= 1

            pairs = [(0, 50), (12, 80), (99, 1)]
            with ReachabilityClient(server.host, server.port) as client:
                assert client.query_many(pairs).results == oracle(
                    graph, pairs
                )
            server.terminate()


@pytest.mark.slow
class TestSnapshotBoot:
    def test_pack_then_serve_snapshot(self, graph, graph_file, tmp_path):
        import repro

        pack = tmp_path / "graph.tolf"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "pack",
             str(graph_file), str(pack)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "packed" in proc.stdout
        assert pack.stat().st_size > 0

        pairs = [(0, 50), (50, 0), (12, 80), (99, 1)]
        args = ["--snapshot", str(pack), *WORKERS_ARGS]
        with spawned_server(graph_file, server_args=args) as server:
            with ReachabilityClient(server.host, server.port) as client:
                assert client.query_many(pairs).results == oracle(
                    graph, pairs
                )
                # A pack-booted server still takes updates.
                tail, head = non_edges(graph, 1)[0]
                assert client.apply(UpdateOp.insert_edge(tail, head)) == 1
            server.terminate()
