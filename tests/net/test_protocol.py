"""Unit tests for the wire protocol: framing, envelopes, error mapping."""

import socket
import struct
import threading

import pytest

from repro.errors import (
    OverloadedError,
    ProtocolError,
    ReproError,
    SerializationError,
    UnknownVertexError,
    VertexNotFoundError,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
    error_fields_for,
    error_response,
    ok_response,
    raise_for_error,
    recv_frame_sync,
    send_frame_sync,
    wire_pairs,
    wire_vertex,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "query", "pairs": [[1, 2]], "v": 1}
        frame = encode_frame(payload)
        length = struct.unpack("!I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == payload

    def test_round_trip_over_a_real_socket(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "ping", "id": 7, "blob": "x" * 100_000}
            sender = threading.Thread(
                target=send_frame_sync, args=(a, payload)
            )
            sender.start()
            assert recv_frame_sync(b) == payload
            sender.join()
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame_sync(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"op": "ping"})[:5])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame_sync(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected_before_read(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds max"):
                recv_frame_sync(b)
        finally:
            a.close()
            b.close()

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_payload(b"\xff\xfe not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1, 2, 3]")


class TestEnvelopes:
    def test_ok_response_carries_version_and_id(self):
        resp = ok_response(42, results=[True])
        assert resp == {
            "v": PROTOCOL_VERSION, "id": 42, "ok": True, "results": [True],
        }

    def test_error_response_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            error_response(1, "no_such_code", "boom")

    def test_pairs_validation(self):
        assert wire_pairs([[1, 2], ["a", "b"]]) == [(1, 2), ("a", "b")]
        with pytest.raises(ProtocolError):
            wire_pairs("nope")
        with pytest.raises(ProtocolError):
            wire_pairs([[1]])

    def test_wire_vertex_restores_tuples(self):
        assert wire_vertex([1, [2, 3]]) == (1, (2, 3))
        assert wire_vertex("plain") == "plain"


class TestErrorMapping:
    """Exceptions survive the wire as the same exception type."""

    @pytest.mark.parametrize("exc,code", [
        (UnknownVertexError(99), "unknown_vertex"),
        (VertexNotFoundError(99), "unknown_vertex"),
        (SerializationError("bad magic"), "serialization"),
        (OverloadedError("busy", 12.5), "overloaded"),
        (ProtocolError("garbled"), "bad_request"),
        (RuntimeError("surprise"), "internal"),
    ])
    def test_exception_to_code(self, exc, code):
        assert error_fields_for(exc)["code"] == code

    def test_unknown_vertex_round_trips_with_vertex(self):
        fields = error_fields_for(UnknownVertexError(99))
        with pytest.raises(UnknownVertexError) as info:
            raise_for_error(fields)
        assert info.value.vertex == 99

    def test_overloaded_round_trips_with_retry_hint(self):
        fields = error_fields_for(OverloadedError("busy", 12.5))
        with pytest.raises(OverloadedError) as info:
            raise_for_error(fields)
        assert info.value.retry_after_ms == 12.5

    def test_serialization_round_trips(self):
        with pytest.raises(SerializationError):
            raise_for_error(error_fields_for(SerializationError("torn")))

    def test_unknown_code_becomes_repro_error(self):
        with pytest.raises(ReproError):
            raise_for_error({"code": "internal", "message": "boom"})
