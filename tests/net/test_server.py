"""Integration tests for the asyncio front end.

Every test runs a real server (:class:`BackgroundServer` on a daemon
thread) and talks to it over real sockets with the blocking client —
the same path production traffic takes, minus the network.
"""

import socket
import struct
import threading

import pytest

from repro.errors import (
    OverloadedError,
    ProtocolError,
    UnknownVertexError,
)
from repro.graph.generators import random_dag
from repro.graph.traversal import bidirectional_reachable
from repro.net.client import ReachabilityClient
from repro.net.protocol import recv_frame_sync
from repro.net.server import BackgroundServer
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp


@pytest.fixture(scope="module")
def dag():
    return random_dag(80, 200, seed=7)


@pytest.fixture()
def service(dag):
    return ReachabilityService(dag.copy(), cache_size=4096)


@pytest.fixture()
def running(service):
    with BackgroundServer(service) as bs:
        yield bs


def oracle(graph, pairs):
    return [bidirectional_reachable(graph, s, t) for s, t in pairs]


class TestQueries:
    def test_single_query_matches_oracle(self, dag, running):
        with ReachabilityClient(running.host, running.port) as client:
            for s, t in [(0, 1), (5, 40), (79, 0)]:
                assert client.query(s, t) == bidirectional_reachable(
                    dag, s, t
                )

    def test_batch_matches_oracle_in_order_with_duplicates(
        self, dag, running
    ):
        pairs = [(0, 40), (40, 0), (0, 40), (3, 3), (12, 60)]
        with ReachabilityClient(running.host, running.port) as client:
            reply = client.query_many(pairs)
        assert reply.results == oracle(dag, pairs)
        assert reply.epoch == 0
        assert reply.degraded is False

    def test_empty_batch(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            assert client.query_many([]).results == []

    def test_degraded_mode_is_surfaced_in_the_envelope(
        self, dag, service, running
    ):
        service.enter_degraded()
        try:
            with ReachabilityClient(running.host, running.port) as client:
                reply = client.query_many([(0, 40)])
            assert reply.degraded is True
            assert reply.results == oracle(dag, [(0, 40)])
        finally:
            service.exit_degraded()

    def test_ping_and_stats(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            pong = client.ping()
            assert pong["pong"] is True and pong["epoch"] == 0
            client.query(0, 1)
            stats = client.stats()
            assert stats["counters"]["queries"] >= 1
            assert stats["epoch"] == 0
            net = client.net_stats()
            assert net["requests"] >= 3
            assert net["queries"] >= 1


class TestUpdates:
    def test_update_applies_and_bumps_epoch(self, dag, service, running):
        # Pick a pair with no edge and no path, then connect it.
        tail, head = None, None
        for s in dag.vertices():
            for t in dag.vertices():
                if s != t and not bidirectional_reachable(dag, s, t) \
                        and not bidirectional_reachable(dag, t, s):
                    tail, head = s, t
                    break
            if tail is not None:
                break
        assert tail is not None
        with ReachabilityClient(running.host, running.port) as client:
            assert client.query(tail, head) is False
            assert client.insert_edge(tail, head) == 1
            reply = client.query_many([(tail, head)])
            assert reply.results == [True]
            assert reply.epoch == 1

    def test_update_with_unknown_vertex_is_a_structured_error(
        self, running
    ):
        with ReachabilityClient(running.host, running.port) as client:
            with pytest.raises(UnknownVertexError) as info:
                client.update([UpdateOp.insert_edge(0, "never-seen")])
            assert info.value.vertex == "never-seen"
            # The connection is still usable afterwards.
            assert client.ping()["pong"] is True

    def test_malformed_update_op_is_bad_request(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            with pytest.raises(ProtocolError):
                client._call({"op": "update", "ops": [{"kind": "wat"}]})
            assert client.ping()["pong"] is True


class TestProtocolErrors:
    def test_unknown_vertex_query_keeps_the_connection(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            with pytest.raises(UnknownVertexError):
                client.query(123456, 0)
            assert client.ping()["pong"] is True

    def test_unknown_op(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            with pytest.raises(ProtocolError, match="unknown_op"):
                client._call({"op": "frobnicate"})

    def test_unsupported_version(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            client._next_id += 1
            from repro.net.protocol import send_frame_sync

            send_frame_sync(
                client._sock,
                {"v": 99, "id": client._next_id, "op": "ping"},
            )
            response = recv_frame_sync(client._sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "unsupported_version"

    def test_bad_pairs_shape(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            with pytest.raises(ProtocolError):
                client._call({"op": "query", "pairs": [[1, 2, 3]]})

    def test_garbage_bytes_get_an_error_then_close(self, running):
        sock = socket.create_connection(
            (running.host, running.port), timeout=10
        )
        try:
            # A length prefix far beyond MAX_FRAME_BYTES.
            sock.sendall(struct.pack("!I", 0xFFFFFFFF))
            response = recv_frame_sync(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            # Server closes after a framing error (resync is impossible).
            assert recv_frame_sync(sock) is None
        finally:
            sock.close()


class TestCoalescing:
    """Concurrent submitters coalesce into one probe per pair per epoch."""

    def _count_probes(self, service):
        counts = {}
        lock = threading.Lock()
        real_query = service._index.query

        def counting_query(s, t):
            with lock:
                counts[(s, t)] = counts.get((s, t), 0) + 1
            return real_query(s, t)

        service._index.query = counting_query
        return counts

    def test_one_probe_per_distinct_pair_per_epoch(self, dag):
        service = ReachabilityService(dag.copy(), cache_size=4096)
        counts = self._count_probes(service)
        # Slow batches force concurrent requests to pile into the queue
        # while a batch is in flight.
        with BackgroundServer(service, batch_delay=0.02) as bs:
            pairs_a = [(0, 10), (10, 20), (20, 30), (0, 10)]
            pairs_b = [(10, 20), (30, 40), (0, 10)]
            pairs_c = [(20, 30), (30, 40), (40, 50)]
            replies = {}

            def worker(name, pairs):
                with ReachabilityClient(bs.host, bs.port) as client:
                    for _ in range(3):  # repeats stress the dedup layers
                        replies[name] = client.query_many(pairs)

            threads = [
                threading.Thread(target=worker, args=(n, p))
                for n, p in [("a", pairs_a), ("b", pairs_b), ("c", pairs_c)]
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # Fan-out: every waiter got its own answers, in its own order.
            assert replies["a"].results == oracle(dag, pairs_a)
            assert replies["b"].results == oracle(dag, pairs_b)
            assert replies["c"].results == oracle(dag, pairs_c)

            # 9 requests, 30 pairs, 7 distinct — but the single-consumer
            # batcher + batch dedup + the epoch-stamped cache mean the
            # index was probed exactly once per distinct pair.
            distinct = set(pairs_a) | set(pairs_b) | set(pairs_c)
            assert set(counts) == distinct
            assert all(n == 1 for n in counts.values()), counts

            # A new epoch invalidates the cache: the same pairs probe
            # exactly once more each.
            with ReachabilityClient(bs.host, bs.port) as client:
                client.update([UpdateOp.insert_vertex("fresh")])
                reply = client.query_many(sorted(distinct))
            assert reply.epoch == 1
            assert all(
                counts[p] == 2 for p in distinct
            ), {p: counts[p] for p in distinct}


class TestAdmissionControl:
    def test_overload_sheds_with_structured_error_and_serves_the_rest(
        self, dag
    ):
        service = ReachabilityService(dag.copy(), cache_size=4096)
        with BackgroundServer(
            service, max_pending=8, batch_delay=0.02, max_batch=8
        ) as bs:
            shed = []
            answered = []
            failures = []

            def flood(seed):
                pairs = [(seed % 80, (seed * 7 + i) % 80) for i in range(8)]
                try:
                    with ReachabilityClient(bs.host, bs.port) as client:
                        for _ in range(6):
                            try:
                                reply = client.query_many(pairs)
                            except OverloadedError as exc:
                                assert exc.retry_after_ms >= 0
                                shed.append(1)
                                continue
                            if reply.results != oracle(dag, pairs):
                                failures.append(pairs)
                            answered.append(len(reply.results))
                except Exception as exc:  # noqa: BLE001
                    failures.append(repr(exc))

            threads = [
                threading.Thread(target=flood, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not failures
            assert shed, "expected at least one shed under overload"
            assert answered, "admitted queries must still be served"
            assert service.registry.counter("net.shed").value == len(shed)

    def test_shedding_disabled_when_max_pending_is_zero(self, dag):
        service = ReachabilityService(dag.copy(), cache_size=4096)
        with BackgroundServer(service, max_pending=0) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                reply = client.query_many([(0, 1)] * 64)
                assert len(reply.results) == 64


class TestLifecycle:
    def test_shutdown_flushes_queued_updates(self, dag):
        service = ReachabilityService(
            dag.copy(), cache_size=0, flush_threshold=1000
        )
        with BackgroundServer(service) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                client.update([UpdateOp.insert_vertex("queued-v")])
        # flush_threshold was never reached server-side per submit, but
        # the update handler flushes; the drain flushes again on exit.
        assert "queued-v" in service
        assert service.queue_depth == 0

    def test_port_zero_binds_an_ephemeral_port(self, dag):
        service = ReachabilityService(dag.copy())
        with BackgroundServer(service, port=0) as bs:
            assert bs.port > 0
            with ReachabilityClient(bs.host, bs.port) as client:
                assert client.ping()["pong"] is True
