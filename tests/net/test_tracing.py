"""Protocol-v2 integration tests: trace ids, timings, health, slowlog.

Same harness as ``test_server.py`` — a real :class:`BackgroundServer` on
a daemon thread, real sockets — but focused on the observability
envelope: trace propagation and minting, the opt-in stage breakdown, the
``health`` and ``stats registry`` ops, v1 backward compatibility, and
the slow-query log fed from the dispatch path.
"""

import re

import pytest

from repro.errors import OverloadedError
from repro.graph.generators import random_dag
from repro.net.client import ReachabilityClient
from repro.net.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    recv_frame_sync,
    send_frame_sync,
)
from repro.net.server import BackgroundServer
from repro.obs.slowlog import SlowQueryLog, read_slowlog
from repro.service.durability import DurabilityManager
from repro.service.server import ReachabilityService
from repro.service.updates import UpdateOp

TRACE_RE = re.compile(r"^[0-9a-f]{16}$")


@pytest.fixture(scope="module")
def dag():
    return random_dag(60, 150, seed=11)


@pytest.fixture()
def service(dag):
    return ReachabilityService(dag.copy(), cache_size=256)


@pytest.fixture()
def running(service):
    with BackgroundServer(service) as bs:
        yield bs


class TestTracePropagation:
    def test_client_supplied_trace_is_echoed(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            reply = client.query_many([(0, 1)], trace="feedbeefcafe0001")
        assert reply.trace == "feedbeefcafe0001"

    def test_untraced_request_gets_a_minted_trace(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            reply = client.query_many([(0, 1)])
        # The client mints when the caller doesn't supply one.
        assert TRACE_RE.match(reply.trace)

    def test_server_mints_for_v1_style_peers(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            client._next_id += 1
            send_frame_sync(
                client._sock,
                {"v": 1, "id": client._next_id, "op": "query",
                 "pairs": [[0, 1]]},
            )
            response = recv_frame_sync(client._sock)
        assert response["ok"] is True
        assert TRACE_RE.match(response["trace"])

    def test_distinct_requests_get_distinct_traces(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            first = client.query_many([(0, 1)])
            second = client.query_many([(0, 1)])
        assert first.trace != second.trace

    def test_empty_batch_still_carries_a_trace(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            reply = client.query_many([], trace="00ff00ff00ff00ff")
        assert reply.trace == "00ff00ff00ff00ff"
        assert reply.results == []


class TestTimings:
    def test_opt_in_breakdown_has_every_stage(self, dag, running):
        with ReachabilityClient(running.host, running.port) as client:
            reply = client.query_many([(0, 40), (5, 12)], timings=True)
        stages = reply.timings
        assert stages is not None
        for key in ("admission_ms", "coalesce_ms", "lock_ms", "probe_ms",
                    "total_ms"):
            assert stages[key] >= 0.0, key
        assert stages["cache_hits"] + stages["cache_misses"] == 2
        assert stages["degraded"] is False
        assert stages["total_ms"] >= stages["admission_ms"]

    def test_no_breakdown_unless_requested(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            reply = client.query_many([(0, 1)])
        assert reply.timings is None

    def test_results_identical_with_and_without_timings(self, running):
        pairs = [(0, 40), (40, 0), (3, 3), (12, 50)]
        with ReachabilityClient(running.host, running.port) as client:
            plain = client.query_many(pairs)
            timed = client.query_many(pairs, timings=True)
        assert timed.results == plain.results

    def test_degraded_mode_flagged_in_breakdown(self, service, running):
        service.enter_degraded()
        try:
            with ReachabilityClient(running.host, running.port) as client:
                reply = client.query_many([(0, 1)], timings=True)
        finally:
            service.exit_degraded()
        assert reply.timings["degraded"] is True


class TestIntrospectionOps:
    def test_health_op_round_trip(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            client.query(0, 1)  # warm one query through the stack
            payload = client.health()
        assert payload["epoch"] == 0
        assert payload["index"]["num_vertices"] == 60
        assert payload["index"]["labels"]["in"]["max"] >= 1
        assert len(payload["index"]["order"]["decile_coverage"]) == 10
        assert payload["wal"] is None

    def test_stats_registry_opt_in(self, running):
        with ReachabilityClient(running.host, running.port) as client:
            client.query(0, 1)
            snapshot = client.registry_snapshot()
            plain = client._call({"op": "stats"})
        assert snapshot["counters"]["service.queries"] >= 1
        assert "net.request_latency" in snapshot["histograms"]
        assert "registry" not in plain  # only shipped when asked for

    def test_both_supported_versions_accepted(self, running):
        assert PROTOCOL_VERSION == SUPPORTED_VERSIONS[-1]
        with ReachabilityClient(running.host, running.port) as client:
            for version in SUPPORTED_VERSIONS:
                client._next_id += 1
                send_frame_sync(
                    client._sock,
                    {"v": version, "id": client._next_id, "op": "ping"},
                )
                response = recv_frame_sync(client._sock)
                assert response["ok"] is True, version


class TestUpdateTraces:
    def test_update_trace_lands_in_the_wal(self, dag, tmp_path):
        durability = DurabilityManager(tmp_path, fsync="never")
        service = ReachabilityService(
            dag.copy(), flush_threshold=1, durability=durability
        )
        with BackgroundServer(service) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                applied = client.apply(
                    UpdateOp.insert_vertex("traced-vertex"),
                    trace="cafecafecafe0042",
                )
        assert applied == 1
        triples = durability.wal.records_with_traces()
        traced = [t for _, op, t in triples
                  if op.kind == "insert_vertex" and t is not None]
        assert "cafecafecafe0042" in traced

    def test_untraced_local_writes_stay_untraced(self, dag, tmp_path):
        durability = DurabilityManager(tmp_path, fsync="never")
        service = ReachabilityService(
            dag.copy(), flush_threshold=1, durability=durability
        )
        service.apply(UpdateOp.insert_vertex("local"))
        [(_, _, trace)] = [
            r for r in durability.wal.records_with_traces()
            if r[1].kind == "insert_vertex"
        ]
        assert trace is None


class TestSlowlogIntegration:
    def test_every_request_logged_at_threshold_zero(self, dag, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=0.0)
        service = ReachabilityService(dag.copy(), cache_size=256)
        with BackgroundServer(service, slowlog=log) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                client.query_many([(0, 40), (5, 12)],
                                  trace="abadcafe00000001")
        log.close()
        records = read_slowlog(tmp_path / "slow.jsonl")
        [rec] = [r for r in records if r["trace"] == "abadcafe00000001"]
        assert rec["outcome"] == "ok"
        assert rec["pairs"] == 2
        # The slowlog always gets the stage breakdown, even though the
        # client did not opt into timings on the wire.
        assert rec["stages"]["probe_ms"] >= 0.0
        assert rec["stages"]["coalesce_ms"] >= 0.0
        assert rec["epoch"] == 0

    def test_shed_requests_logged_with_outcome(self, dag, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=0.0)
        service = ReachabilityService(dag.copy())
        # max_pending=1: any two-pair batch overflows the queue bound.
        with BackgroundServer(service, slowlog=log, max_pending=1) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                with pytest.raises(OverloadedError):
                    client.query_many([(0, 1), (1, 2)],
                                      trace="dead0000beef0000")
        log.close()
        [rec] = [r for r in read_slowlog(tmp_path / "slow.jsonl")
                 if r["trace"] == "dead0000beef0000"]
        assert rec["outcome"] == "shed"

    def test_single_pair_recorded_for_grepping(self, dag, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=0.0)
        service = ReachabilityService(dag.copy())
        with BackgroundServer(service, slowlog=log) as bs:
            with ReachabilityClient(bs.host, bs.port) as client:
                client.query(7, 33)
        log.close()
        [rec] = read_slowlog(tmp_path / "slow.jsonl")
        assert rec["pair"] == [7, 33]
