"""Client resilience: reconnect, retries, deadlines, circuit breaker.

Driven against a scripted stub server — a plain threaded TCP listener
speaking the frame protocol — so each test controls exactly when the
connection dies, when replies go missing, and what the server answers.
"""

import socket
import threading
import time

import pytest

from repro.core.ops import UpdateOp
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
)
from repro.net.client import ReachabilityClient
from repro.net.protocol import recv_frame_sync, send_frame_sync


class StubServer:
    """Accept one connection per handler in *script*, then stop."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        for handler in self.script:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            try:
                handler(self, conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass
        self.thread.join(timeout=5)


def answer(op_fields):
    """Handler: read one request, reply with *op_fields*, close."""
    def handler(server, conn):
        request = recv_frame_sync(conn)
        if request is None:
            return
        server.requests.append(request)
        reply = {"v": request["v"], "id": request["id"]}
        reply.update(op_fields)
        send_frame_sync(conn, reply)
    return handler


def drop_after_read(server, conn):
    """Handler: read the request, then close without replying."""
    request = recv_frame_sync(conn)
    if request is not None:
        server.requests.append(request)


def drop_immediately(server, conn):
    """Handler: close the connection without reading anything."""


def hang_after_read(server, conn):
    """Handler: read the request, then go silent (connection open)."""
    request = recv_frame_sync(conn)
    if request is not None:
        server.requests.append(request)
    try:
        conn.settimeout(10.0)
        conn.recv(1)  # blocks until the client hangs up
    except OSError:
        pass


def serve_forever(server, conn):
    """Handler: keep answering pings on one connection."""
    while True:
        request = recv_frame_sync(conn)
        if request is None:
            return
        server.requests.append(request)
        send_frame_sync(
            conn, {"v": request["v"], "id": request["id"], "ok": True}
        )


class TestReconnect:
    def test_idempotent_call_survives_a_server_restart(self):
        # Connection 1 dies after one reply (a restarting server);
        # connection 2 answers — the caller never sees the reset.
        server = StubServer([answer({"ok": True}), serve_forever])
        try:
            with ReachabilityClient(
                "127.0.0.1", server.port, retries=2, backoff=0.01
            ) as client:
                assert client.ping()["ok"] is True
                assert client.ping()["ok"] is True  # transparently redialed
                assert client.resilience["reconnects"] >= 1
                assert client.resilience["retries"] >= 1
        finally:
            server.close()

    def test_retry_budget_is_bounded(self):
        server = StubServer([drop_immediately, drop_immediately,
                             drop_immediately])
        try:
            with ReachabilityClient(
                "127.0.0.1", server.port, retries=1, backoff=0.01,
                breaker_threshold=0,
            ) as client:
                with pytest.raises(ProtocolError):
                    client.ping()
        finally:
            server.close()


class TestNonIdempotent:
    def test_update_is_not_replayed_after_a_lost_reply(self):
        # The update reached the server (the send succeeded) but the
        # reply was lost — replaying could double-apply, so the client
        # must surface the failure instead.  serve_forever would answer
        # a replay; assert it never sees one.
        server = StubServer([drop_after_read, serve_forever])
        try:
            with ReachabilityClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            ) as client:
                with pytest.raises(ProtocolError):
                    client.apply(UpdateOp.insert_edge("a", "b"))
                updates = [
                    r for r in server.requests if r.get("op") == "update"
                ]
                assert len(updates) == 1
        finally:
            server.close()


class TestDeadline:
    def test_deadline_caps_a_silent_server(self):
        server = StubServer([hang_after_read, hang_after_read,
                             hang_after_read])
        try:
            client = ReachabilityClient(
                "127.0.0.1", server.port, retries=2, backoff=0.01
            )
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.ping(deadline=0.3)
            assert time.monotonic() - start < 5.0
            client.close()
        finally:
            server.close()


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_and_cools_down(self):
        server = StubServer([answer({"ok": True})])
        with ReachabilityClient(
            "127.0.0.1", server.port, retries=0, backoff=0.01,
            breaker_threshold=2, breaker_reset=0.2,
        ) as client:
            assert client.ping()["ok"] is True
            server.close()  # endpoint gone: connects now fail fast
            for _ in range(2):
                with pytest.raises(ProtocolError):
                    client.ping()
            # Threshold reached: the next call fails locally.
            with pytest.raises(CircuitOpenError) as excinfo:
                client.ping()
            assert excinfo.value.retry_after_ms > 0
            assert client.resilience["breaker_opens"] == 1
            # After the cooldown the breaker lets an attempt through
            # (which still fails on the wire, not locally).
            time.sleep(0.25)
            with pytest.raises(ProtocolError):
                client.ping()


class TestServerVerdictsAreNotRetried:
    def test_overloaded_is_raised_once(self):
        server = StubServer([
            answer({
                "ok": False,
                "error": {"code": "overloaded", "message": "shed",
                          "retry_after_ms": 5.0},
            }),
            serve_forever,
        ])
        try:
            with ReachabilityClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            ) as client:
                with pytest.raises(OverloadedError):
                    client.ping()
                assert len(server.requests) == 1
        finally:
            server.close()
