"""Atomic port-file handling: write/read/remove, stale vs live owners."""

import os
import subprocess

import pytest

from repro.net.portfile import (
    PortFileBusyError,
    read_port_file,
    remove_port_file,
    write_port_file,
)


def _dead_pid() -> int:
    proc = subprocess.Popen(["/bin/true"])
    proc.wait()
    return proc.pid


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "port"
        write_port_file(path, 7421)
        assert read_port_file(path) == (7421, os.getpid())
        # The first line alone is the legacy consumer contract.
        assert int(path.read_text().split()[0]) == 7421

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "port"
        write_port_file(path, 1234)
        assert [p.name for p in tmp_path.iterdir()] == ["port"]

    def test_read_missing_file(self, tmp_path):
        assert read_port_file(tmp_path / "nope") == (None, None)

    def test_read_legacy_one_line_format(self, tmp_path):
        path = tmp_path / "port"
        path.write_text("9000\n")
        assert read_port_file(path) == (9000, None)

    def test_read_garbage(self, tmp_path):
        path = tmp_path / "port"
        path.write_text("not a port\n")
        assert read_port_file(path) == (None, None)


class TestOwnership:
    def test_refuses_to_clobber_a_live_owner(self, tmp_path):
        path = tmp_path / "port"
        path.write_text(f"7000\n{os.getpid()}\n")
        # Simulate a *different* live process owning the file: any live
        # pid that is not the writer triggers the refusal, and pid 1 is
        # always alive.
        path.write_text("7000\n1\n")
        with pytest.raises(PortFileBusyError) as excinfo:
            write_port_file(path, 7001)
        assert excinfo.value.port == 7000
        assert excinfo.value.pid == 1
        # The original content is untouched.
        assert read_port_file(path) == (7000, 1)

    def test_overwrites_a_dead_owner(self, tmp_path):
        path = tmp_path / "port"
        path.write_text(f"7000\n{_dead_pid()}\n")
        write_port_file(path, 7001)
        assert read_port_file(path) == (7001, os.getpid())

    def test_rewrite_by_the_same_process_is_fine(self, tmp_path):
        path = tmp_path / "port"
        write_port_file(path, 7000)
        write_port_file(path, 7001)
        assert read_port_file(path) == (7001, os.getpid())


class TestRemove:
    def test_remove_own_file(self, tmp_path):
        path = tmp_path / "port"
        write_port_file(path, 7000)
        assert remove_port_file(path) is True
        assert not path.exists()

    def test_remove_missing_file(self, tmp_path):
        assert remove_port_file(tmp_path / "nope") is False

    def test_remove_refuses_someone_elses_file(self, tmp_path):
        path = tmp_path / "port"
        path.write_text("7000\n1\n")
        assert remove_port_file(path) is False
        assert path.exists()

    def test_remove_legacy_file_without_owner(self, tmp_path):
        path = tmp_path / "port"
        path.write_text("7000\n")
        assert remove_port_file(path) is True
