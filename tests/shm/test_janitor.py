"""Boot-time janitor: orphan detection, reaping, shutdown sweeps.

All against the real ``/dev/shm`` — the janitor's family regex scopes
it to ``repro-*`` names, and each test creates (and cleans up) its own
family, so live servers and sibling tests are never touched.
"""

import os
import subprocess

import pytest

from repro.obs.registry import MetricRegistry
from repro.shm.control import (
    ControlBlock,
    create_segment,
    new_base_name,
    segment_name,
    unlink_segment,
)
from repro.shm.janitor import (
    list_families,
    reap_orphans,
    scan_orphans,
    sweep_family,
)


def _dead_pid() -> int:
    proc = subprocess.Popen(["/bin/true"])
    proc.wait()
    return proc.pid


def _make_family(*, owner_pid=None, generations=(1,)):
    """A control block + data segments; returns (base, block)."""
    base = new_base_name()
    block = ControlBlock.create(base, num_workers=1)
    if owner_pid is not None:
        block._cells[8] = owner_pid  # _OWNER_PID
    segments = []
    for generation in generations:
        seg = create_segment(segment_name(base, generation), 64)
        seg.close()
        segments.append(seg)
    return base, block


def _cleanup(base, block) -> None:
    try:
        block.close()
    except Exception:
        pass
    sweep_family(base)


class TestScan:
    def test_live_owner_family_is_not_an_orphan(self):
        base, block = _make_family(owner_pid=os.getpid())
        try:
            assert base in list_families()
            assert base not in scan_orphans()
        finally:
            _cleanup(base, block)

    def test_dead_owner_family_is_an_orphan(self):
        base, block = _make_family(owner_pid=_dead_pid(), generations=(1, 2))
        try:
            orphans = scan_orphans()
            assert orphans[base] == sorted(
                [f"{base}-ctl", f"{base}-g1", f"{base}-g2"]
            )
        finally:
            _cleanup(base, block)

    def test_controlless_family_needs_the_age_gate(self):
        # A data segment with no control block could be a sibling
        # writer mid-publish — only claim it once it has sat a while.
        base = new_base_name()
        seg = create_segment(segment_name(base, 1), 64)
        seg.close()
        try:
            assert base not in scan_orphans(min_age=30.0)
            assert base in scan_orphans(min_age=0.0)
        finally:
            unlink_segment(segment_name(base, 1))


class TestReap:
    def test_reap_unlinks_only_the_orphans(self):
        live_base, live_block = _make_family(owner_pid=os.getpid())
        dead_base, dead_block = _make_family(
            owner_pid=_dead_pid(), generations=(1, 2)
        )
        registry = MetricRegistry()
        try:
            reaped = reap_orphans(registry=registry)
            assert dead_base in reaped
            assert live_base not in reaped
            families = list_families()
            assert dead_base not in families
            assert live_base in families
            assert registry.snapshot()["counters"][
                "shm.janitor_reaped"
            ] == 3
        finally:
            _cleanup(live_base, live_block)
            _cleanup(dead_base, dead_block)

    def test_reap_is_idempotent(self):
        base, block = _make_family(owner_pid=_dead_pid())
        try:
            assert base in reap_orphans()
            assert base not in reap_orphans()
        finally:
            _cleanup(base, block)


class TestSweep:
    def test_sweep_removes_the_whole_family_and_nothing_else(self):
        base_a, block_a = _make_family(
            owner_pid=os.getpid(), generations=(1, 2, 3)
        )
        base_b, block_b = _make_family(owner_pid=os.getpid())
        try:
            block_a.close()
            removed = sweep_family(base_a)
            assert removed == sorted(
                [f"{base_a}-ctl"]
                + [f"{base_a}-g{g}" for g in (1, 2, 3)]
            )
            families = list_families()
            assert base_a not in families
            assert base_b in families
        finally:
            sweep_family(base_a)
            _cleanup(base_b, block_b)

    def test_sweep_of_absent_family_is_a_noop(self):
        assert sweep_family(new_base_name()) == []
