"""Tests for the shared-memory control block (seqlock + worker slots)."""

import pytest

from repro.shm.control import (
    MAX_WORKERS,
    SLOT_FORWARDED,
    SLOT_GENERATION,
    SLOT_PID,
    SLOT_REQUESTS,
    ControlBlock,
    new_base_name,
    segment_name,
)


@pytest.fixture()
def block():
    block = ControlBlock.create(new_base_name(), num_workers=3)
    yield block
    block.close()
    block.unlink()


class TestNames:
    def test_base_names_are_unique(self):
        assert new_base_name() != new_base_name()

    def test_segment_names_embed_generation(self):
        assert segment_name("repro-abcd", 7) == "repro-abcd-g7"


class TestSnapshotTriple:
    def test_fresh_block_is_zeroed(self, block):
        generation, epoch, data_len, ts = block.read_snapshot()
        assert (generation, epoch, data_len, ts) == (0, 0, 0, 0)
        assert not block.degraded
        assert not block.shutdown
        assert block.num_workers == 3

    def test_write_then_read(self, block):
        block.write_snapshot(5, 12, 4096)
        generation, epoch, data_len, ts = block.read_snapshot()
        assert (generation, epoch, data_len) == (5, 12, 4096)
        assert ts > 0
        assert block.generation == 5
        assert block.epoch == 12

    def test_cross_process_view(self, block):
        # A second attach (same process, separate mapping) sees the
        # writer's stores — the actual reader-worker topology.
        block.write_snapshot(2, 9, 128)
        peer = ControlBlock.attach(block.name)
        try:
            assert peer.read_snapshot()[:3] == (2, 9, 128)
            assert peer.num_workers == 3
        finally:
            peer.close()

    def test_flags_propagate(self, block):
        peer = ControlBlock.attach(block.name)
        try:
            block.set_degraded(True)
            assert peer.degraded
            block.set_degraded(False)
            assert not peer.degraded
            block.set_shutdown()
            assert peer.shutdown
        finally:
            peer.close()


class TestWorkerSlots:
    def test_slot_roundtrip_across_attaches(self, block):
        slot = block.worker_cells(1)
        slot[SLOT_PID] = 4242
        slot[SLOT_GENERATION] = 3
        slot[SLOT_REQUESTS] = 17
        slot[SLOT_FORWARDED] = 2
        slot.release()

        peer = ControlBlock.attach(block.name)
        try:
            stats = peer.worker_stats(1)
            assert stats["pid"] == 4242
            assert stats["generation"] == 3
            assert stats["requests"] == 17
            assert stats["forwarded"] == 2
            # Neighboring slots untouched.
            assert peer.worker_stats(0)["pid"] == 0
            assert peer.worker_stats(2)["pid"] == 0
        finally:
            peer.close()

    def test_workers_lists_only_configured_slots(self, block):
        assert [w["worker"] for w in block.workers()] == [0, 1, 2]

    def test_out_of_range_worker_id(self, block):
        with pytest.raises(ValueError):
            block.worker_cells(MAX_WORKERS)
        with pytest.raises(ValueError):
            block.worker_cells(-1)

    def test_close_survives_outstanding_slot_view(self):
        # A live worker_cells view must not break shutdown (BufferError
        # is swallowed; the mapping is left to process exit).
        block = ControlBlock.create(new_base_name(), num_workers=1)
        slot = block.worker_cells(0)
        block.close()
        slot.release()
        block.unlink()
