"""Tests for the shared-memory control block (seqlock + worker slots)."""

import os
import subprocess
import threading

import pytest

from repro.errors import SnapshotUnavailableError
from repro.shm.control import (
    MAX_WORKERS,
    SLOT_FORWARDED,
    SLOT_GENERATION,
    SLOT_PID,
    SLOT_REQUESTS,
    ControlBlock,
    attach_segment,
    create_segment,
    new_base_name,
    pid_alive,
    segment_name,
    unlink_segment,
)


@pytest.fixture()
def block():
    block = ControlBlock.create(new_base_name(), num_workers=3)
    yield block
    block.close()
    block.unlink()


class TestNames:
    def test_base_names_are_unique(self):
        assert new_base_name() != new_base_name()

    def test_segment_names_embed_generation(self):
        assert segment_name("repro-abcd", 7) == "repro-abcd-g7"


class TestSnapshotTriple:
    def test_fresh_block_is_zeroed(self, block):
        generation, epoch, data_len, ts = block.read_snapshot()
        assert (generation, epoch, data_len, ts) == (0, 0, 0, 0)
        assert not block.degraded
        assert not block.shutdown
        assert block.num_workers == 3

    def test_write_then_read(self, block):
        block.write_snapshot(5, 12, 4096)
        generation, epoch, data_len, ts = block.read_snapshot()
        assert (generation, epoch, data_len) == (5, 12, 4096)
        assert ts > 0
        assert block.generation == 5
        assert block.epoch == 12

    def test_cross_process_view(self, block):
        # A second attach (same process, separate mapping) sees the
        # writer's stores — the actual reader-worker topology.
        block.write_snapshot(2, 9, 128)
        peer = ControlBlock.attach(block.name)
        try:
            assert peer.read_snapshot()[:3] == (2, 9, 128)
            assert peer.num_workers == 3
        finally:
            peer.close()

    def test_flags_propagate(self, block):
        peer = ControlBlock.attach(block.name)
        try:
            block.set_degraded(True)
            assert peer.degraded
            block.set_degraded(False)
            assert not peer.degraded
            block.set_shutdown()
            assert peer.shutdown
        finally:
            peer.close()


class TestWorkerSlots:
    def test_slot_roundtrip_across_attaches(self, block):
        slot = block.worker_cells(1)
        slot[SLOT_PID] = 4242
        slot[SLOT_GENERATION] = 3
        slot[SLOT_REQUESTS] = 17
        slot[SLOT_FORWARDED] = 2
        slot.release()

        peer = ControlBlock.attach(block.name)
        try:
            stats = peer.worker_stats(1)
            assert stats["pid"] == 4242
            assert stats["generation"] == 3
            assert stats["requests"] == 17
            assert stats["forwarded"] == 2
            # Neighboring slots untouched.
            assert peer.worker_stats(0)["pid"] == 0
            assert peer.worker_stats(2)["pid"] == 0
        finally:
            peer.close()

    def test_workers_lists_only_configured_slots(self, block):
        assert [w["worker"] for w in block.workers()] == [0, 1, 2]

    def test_out_of_range_worker_id(self, block):
        with pytest.raises(ValueError):
            block.worker_cells(MAX_WORKERS)
        with pytest.raises(ValueError):
            block.worker_cells(-1)

    def test_close_survives_outstanding_slot_view(self):
        # A live worker_cells view must not break shutdown (BufferError
        # is swallowed; the mapping is left to process exit).
        block = ControlBlock.create(new_base_name(), num_workers=1)
        slot = block.worker_cells(0)
        block.close()
        slot.release()
        block.unlink()


def _dead_pid() -> int:
    """A pid that was just alive and is now certainly reaped."""
    proc = subprocess.Popen(["/bin/true"])
    proc.wait()
    return proc.pid


class TestSeqlock:
    """The seqlock contract, driven against the control block directly."""

    def test_concurrent_writes_never_yield_torn_reads(self, block):
        """A reader racing a publishing writer must never observe a
        mixed-generation triple: every write keeps ``epoch == 2*g`` and
        ``data_len == 3*g``, so any cross-generation mix breaks the
        correlation."""
        peer = ControlBlock.attach(block.name)
        stop = threading.Event()
        torn: list[tuple] = []

        def read_loop() -> None:
            while not stop.is_set():
                generation, epoch, data_len, _ = peer.read_snapshot()
                if epoch != 2 * generation or data_len != 3 * generation:
                    torn.append((generation, epoch, data_len))
                    return

        reader = threading.Thread(target=read_loop)
        block.write_snapshot(1, 2, 3)
        reader.start()
        try:
            for generation in range(2, 3000):
                block.write_snapshot(
                    generation, 2 * generation, 3 * generation
                )
        finally:
            stop.set()
            reader.join(timeout=10)
            peer.close()
        assert torn == []

    def test_reader_spins_through_in_flight_publish(self, block):
        """With the sequence odd, read_snapshot must not return the
        half-written triple; it returns only once the writer lands."""
        block.write_snapshot(1, 2, 3)

        def finish_publish() -> None:
            # Simulates the second half of a publish that was in flight
            # when the reader arrived.
            block._cells[1] = 2      # generation
            block._cells[2] = 4      # epoch
            block._cells[3] = 6      # data_len
            block._cells[0] += 1     # seq back to even

        block._cells[0] += 1  # seq odd: publish in flight
        block._cells[1] = 99  # half-written garbage a torn read would see
        finisher = threading.Timer(0.05, finish_publish)
        finisher.start()
        try:
            generation, epoch, data_len, _ = block.read_snapshot(
                stall_timeout=5.0
            )
        finally:
            finisher.join()
        assert (generation, epoch, data_len) == (2, 4, 6)

    def test_stalled_seqlock_raises_then_repairs(self, block):
        block.write_snapshot(1, 1, 10)

        class Boom(RuntimeError):
            pass

        def die_mid_flip() -> None:
            raise Boom

        # The publisher "dies" between the odd bump and the field
        # writes — exactly the SIGKILL-mid-publish window.
        with pytest.raises(Boom):
            block.write_snapshot(2, 2, 20, on_flip=die_mid_flip)
        with pytest.raises(SnapshotUnavailableError):
            block.read_snapshot(stall_timeout=0.05)

        # The respawned writer repairs the sequence, then overwrites
        # the whole record with its first publish.
        assert block.repair_seqlock() is True
        assert block.repair_seqlock() is False
        block.read_snapshot(stall_timeout=0.05)  # consistent again
        block.write_snapshot(3, 9, 30)
        assert block.read_snapshot()[:3] == (3, 9, 30)


class TestProcessRoster:
    def test_owner_pid_stamped_on_create(self, block):
        assert block.owner_pid == os.getpid()

    def test_writer_pid_and_liveness(self, block):
        assert block.writer_pid == 0
        assert block.writer_alive() is False
        block.set_writer_pid(os.getpid())
        assert block.writer_alive() is True
        block.set_writer_pid(_dead_pid())
        assert block.writer_alive() is False
        block.set_writer_pid(0)
        assert block.writer_alive() is False

    def test_restart_counters(self, block):
        peer = ControlBlock.attach(block.name)
        try:
            assert block.incr_worker_restarts() == 1
            assert block.incr_writer_restarts() == 1
            assert block.incr_writer_restarts() == 2
            assert (peer.worker_restarts, peer.writer_restarts) == (1, 2)
        finally:
            peer.close()

    def test_pid_alive(self):
        assert pid_alive(os.getpid()) is True
        assert pid_alive(0) is False
        assert pid_alive(-1) is False
        assert pid_alive(_dead_pid()) is False


class TestSegmentHelpers:
    def test_create_attach_unlink_roundtrip(self):
        name = f"{new_base_name()}-g1"
        seg = create_segment(name, 128)
        try:
            seg.buf[:3] = b"abc"
            peer = attach_segment(name)
            assert bytes(peer.buf[:3]) == b"abc"
            peer.close()
        finally:
            seg.close()
            assert unlink_segment(name) is True
        # Second unlink: the name is already gone.
        assert unlink_segment(name) is False

    def test_attach_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_segment(f"{new_base_name()}-g1")
