"""Publisher/reader integration over real shared-memory segments.

Single-process, two mappings: the :class:`SnapshotPublisher` freezes a
live :class:`ReachabilityService` into a segment, the
:class:`SnapshotReader` attaches it like a reader worker would, and the
tests assert the whole lifecycle — publish, agree with the live index,
republish on update, grace-period unlink, health reporting.
"""

import random
import time

import pytest

from repro.errors import SnapshotUnavailableError
from repro.graph.generators import random_dag
from repro.graph.traversal import bidirectional_reachable
from repro.service.server import ReachabilityService
from repro.shm.control import create_segment, segment_name
from repro.shm.janitor import sweep_family
from repro.shm.publisher import SnapshotPublisher
from repro.shm.reader import SnapshotReader


@pytest.fixture()
def graph():
    return random_dag(60, 160, seed=13)


@pytest.fixture()
def service(graph):
    return ReachabilityService(graph.copy())


@pytest.fixture()
def plane(service):
    publisher = SnapshotPublisher(service, num_workers=2, grace_period=30.0)
    reader = None
    try:
        publisher.publish()
        reader = SnapshotReader(publisher.control_name)
        yield service, publisher, reader
    finally:
        if reader is not None:
            reader.close()
        publisher.close()


class TestPublishAttach:
    def test_reader_agrees_with_live_service(self, plane, graph):
        service, publisher, reader = plane
        snap = reader.current()
        assert snap.generation == 1
        assert snap.epoch == service.epoch
        rng = random.Random(2)
        vertices = list(graph.vertices())
        for _ in range(300):
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert snap.query(s, t) == bidirectional_reachable(
                graph, s, t
            ), (s, t)

    def test_unknown_vertex_raises_keyerror(self, plane):
        _, _, reader = plane
        with pytest.raises(KeyError):
            reader.current().query("no-such-vertex", 0)

    def test_current_is_stable_between_publishes(self, plane):
        _, _, reader = plane
        assert reader.current() is reader.current()
        assert reader.reattaches == 0


class TestRepublish:
    def test_update_triggers_republish_with_new_answer(self, plane, graph):
        service, publisher, reader = plane
        vertices = sorted(graph.vertices())
        # Find a pair with no path, then wire it directly.
        s, t = next(
            (s, t)
            for s in vertices
            for t in vertices
            if s != t and not bidirectional_reachable(graph, s, t)
        )
        assert reader.current().query(s, t) is False

        service.insert_edge(s, t)
        service.flush()
        assert publisher.poll_once() is True  # epoch moved -> republished

        snap = reader.current()
        assert snap.generation == 2
        assert snap.epoch == service.epoch
        assert snap.query(s, t) is True
        assert reader.reattaches == 1

    def test_poll_once_is_a_noop_without_changes(self, plane):
        service, publisher, reader = plane
        assert publisher.poll_once() is False
        assert reader.current().generation == 1

    def test_degraded_flag_is_mirrored(self, plane):
        service, publisher, reader = plane
        service.enter_degraded()
        try:
            publisher.poll_once()
            assert reader.degraded is True
        finally:
            service.exit_degraded()
        publisher.poll_once()
        assert reader.degraded is False


class TestGracePeriod:
    def test_retired_segment_unlinks_after_grace(self, service, graph):
        publisher = SnapshotPublisher(service, grace_period=0.0)
        try:
            publisher.publish()
            if graph.has_edge(0, 1):
                service.delete_edge(0, 1)
            else:
                service.insert_edge(0, 1)
            service.flush()
            publisher.publish()
            # grace 0: the retired generation goes away on the next reap.
            publisher._reap_retired()
            health = publisher.health_section()
            assert health["segments_unlinked"] == 1
            assert health["segments_live"] == 1
            assert health["generation"] == 2
        finally:
            publisher.close()

    def test_reader_survives_publish_storm(self, service, graph):
        publisher = SnapshotPublisher(service, grace_period=0.0)
        reader = None
        try:
            publisher.publish()
            reader = SnapshotReader(publisher.control_name)
            vertices = sorted(graph.vertices())
            for k in range(5):
                tail, head = vertices[2 * k], vertices[2 * k + 1]
                if not graph.has_edge(tail, head):
                    service.insert_edge(tail, head)
                    service.flush()
                publisher.publish()
                snap = reader.current()
                assert snap.generation == publisher.generation
        finally:
            if reader is not None:
                reader.close()
            publisher.close()


class TestHealthSection:
    def test_shape_and_worker_slots(self, plane):
        service, publisher, reader = plane
        slot = reader.control.worker_cells(0)
        try:
            slot[0] = 999999  # SLOT_PID: definitely not a live process
        finally:
            slot.release()
        health = publisher.health_section()
        assert health["generation"] == 1
        assert health["epoch"] == service.epoch
        assert health["bytes"] > 0
        assert health["age_s"] >= 0.0
        assert health["publishes"] == 1
        assert health["degraded"] is False
        assert len(health["workers"]) == 2
        w0 = health["workers"][0]
        assert w0["pid"] == 999999
        assert w0["alive"] is False

    def test_close_unlinks_everything_and_sets_shutdown(self, service):
        publisher = SnapshotPublisher(service, grace_period=30.0)
        publisher.publish()
        reader = SnapshotReader(publisher.control_name)
        snap = reader.current()  # keep the mapping alive across unlink
        assert snap.query(0, 0) is True
        assert reader.shutdown is False
        publisher.close()
        # Attached mappings stay readable after unlink removed the name.
        assert snap.query(0, 0) is True
        assert reader.shutdown is True
        reader.close()


class TestFailoverAttach:
    """A successor publisher re-binding to a surviving control block —
    the writer-respawn path, simulated in-process by abandoning the
    first publisher without closing it (a SIGKILLed writer runs no
    ``finally`` blocks either)."""

    def test_successor_resumes_generation_and_publishes(self, graph):
        service_a = ReachabilityService(graph.copy())
        first = SnapshotPublisher(service_a, num_workers=1, grace_period=0.0)
        base = first.base
        try:
            first.publish()
            reader = SnapshotReader(first.control_name)
            snap = reader.current()
            assert snap.generation == 1

            # "Respawn": a fresh service (as recovery would build) and a
            # publisher attached to the existing control block.
            service_b = ReachabilityService(graph.copy())
            successor = SnapshotPublisher(
                service_b, control=first.control_name, grace_period=0.0
            )
            assert successor.owns_control is False
            assert successor.base == base
            assert successor.generation == 1  # inherited, not reset

            successor.publish()
            snap = reader.current()
            assert snap.generation == 2
            # The reader re-attached across the failover and answers
            # match the live service.
            vertices = sorted(graph.vertices())
            rng = random.Random(5)
            for _ in range(100):
                s, t = rng.choice(vertices), rng.choice(vertices)
                assert snap.query(s, t) == bidirectional_reachable(
                    graph, s, t
                )

            # Attach-mode close keeps the current generation linked for
            # the readers still serving from it.
            successor.close()
            assert reader.shutdown is False
            assert reader.current().generation == 2
            reader.close()
        finally:
            first.control.close()  # release the abandoned mapping
            sweep_family(base)

    def test_epoch_floor_keeps_epochs_monotonic(self, graph):
        service_a = ReachabilityService(graph.copy())
        # Advance the first service's epoch past a fresh service's.
        vertices = sorted(graph.vertices())
        for k in range(3):
            tail, head = vertices[2 * k], vertices[2 * k + 1]
            if not graph.has_edge(tail, head):
                service_a.insert_edge(tail, head)
        service_a.flush()
        first = SnapshotPublisher(service_a, grace_period=0.0)
        base = first.base
        try:
            first.publish()
            inherited_epoch = first.control.epoch
            assert inherited_epoch > 0

            # The respawned writer rebuilt from the graph file: its
            # epoch restarts at 0, but connections that saw the old
            # epoch must never observe it go backwards.
            service_b = ReachabilityService(graph.copy())
            assert service_b.epoch < inherited_epoch
            successor = SnapshotPublisher(
                service_b, control=first.control_name, grace_period=0.0
            )
            successor.publish()
            assert successor.control.epoch >= inherited_epoch
            successor.close()
        finally:
            first.control.close()  # release the abandoned mapping
            sweep_family(base)

    def test_successor_reclaims_a_stranded_next_generation(self, graph):
        # A writer SIGKILLed mid-flip has already *created* the next
        # generation's segment but never flipped the control block to
        # name it.  The successor's first publish reuses that number —
        # it must reclaim the stranded name instead of crash-looping on
        # FileExistsError.
        service = ReachabilityService(graph.copy())
        first = SnapshotPublisher(service, grace_period=0.0)
        base = first.base
        try:
            first.publish()
            stranded = create_segment(segment_name(base, 2), 64)
            stranded.close()
            first.control._cells[0] += 1  # seqlock left odd, too
            successor = SnapshotPublisher(
                ReachabilityService(graph.copy()),
                control=first.control_name,
                grace_period=0.0,
            )
            assert successor.publish() == 2
            reader = SnapshotReader(successor.control_name)
            assert reader.current().generation == 2
            assert reader.current().query(0, 0) is True
            reader.close()
            successor.close()
        finally:
            first.control.close()  # release the abandoned mapping
            sweep_family(base)

    def test_successor_repairs_a_stalled_seqlock(self, graph):
        service = ReachabilityService(graph.copy())
        first = SnapshotPublisher(service, grace_period=0.0)
        base = first.base
        try:
            first.publish()
            # Kill "mid-flip": sequence left odd, triple half-written.
            first.control._cells[0] += 1
            successor = SnapshotPublisher(
                ReachabilityService(graph.copy()),
                control=first.control_name,
                grace_period=0.0,
            )
            assert successor.seqlock_repaired is True
            successor.publish()
            reader = SnapshotReader(successor.control_name)
            assert reader.current().generation >= 2
            reader.close()
            successor.close()
        finally:
            first.control.close()  # release the abandoned mapping
            sweep_family(base)


class TestStaleServe:
    def test_reader_falls_back_to_last_snapshot(self, plane):
        service, publisher, reader = plane
        snap = reader.current()
        assert snap.generation == 1
        # The control block names a generation whose segment does not
        # exist (writer died after the bump, janitor took the segment).
        publisher.control.write_snapshot(99, snap.epoch, snap.data_len)
        stale = reader.current()
        assert stale is snap
        assert reader.stale_serves == 1
        assert stale.age_ms() >= 0.0
        # Point the control block back; the reader recovers on its own.
        publisher.control.write_snapshot(
            1, snap.epoch, snap.data_len
        )
        assert reader.current().generation == 1

    def test_reader_with_no_snapshot_propagates(self, service):
        publisher = SnapshotPublisher(service, grace_period=0.0)
        reader = None
        try:
            reader = SnapshotReader(publisher.control_name)
            with pytest.raises(SnapshotUnavailableError):
                reader.current()  # nothing published yet
        finally:
            if reader is not None:
                reader.close()
            publisher.close()


class TestBackgroundThread:
    def test_start_republishes_on_epoch_change(self, service, graph):
        publisher = SnapshotPublisher(service, grace_period=30.0)
        reader = None
        try:
            publisher.publish()
            reader = SnapshotReader(publisher.control_name)
            publisher.start(interval=0.02)
            vertices = sorted(graph.vertices())
            s, t = vertices[0], vertices[-1]
            if not graph.has_edge(s, t):
                service.insert_edge(s, t)
                service.flush()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if reader.control.generation >= 2:
                    break
                time.sleep(0.02)
            assert reader.current().generation >= 2
        finally:
            if reader is not None:
                reader.close()
            publisher.close()
