"""Regression catalog: every bug found while building this repo, pinned.

Each test encodes one concrete failure discovered during development (by
the property-test oracles) as a minimal deterministic scenario, so a
reintroduction is caught by name rather than by a shrunk hypothesis
counterexample.  The paper-errata regressions live next to their modules
(e.g. ``tests/core/test_deletion.py::TestStaleWitnessGuard``); these are
the *implementation* bugs.
"""

from repro.core.butterfly import butterfly_build
from repro.core.index import ReachabilityIndex, TOLIndex
from repro.core.order import LevelOrder
from repro.core.reference import reference_tol
from repro.graph.condensation import DynamicCondensation
from repro.graph.digraph import DiGraph


class TestButterflyBackwardSweep:
    """The backward sweep once compared against the whole Lin *mapping*
    instead of ``Lin(v)``, making every cover check succeed and silently
    dropping most out-labels."""

    def test_out_labels_survive(self):
        g = DiGraph(edges=[(9, 5), (9, 0), (0, 6)])
        # Order: 5 ranked above 9; 9 -> 5 with no interposed higher vertex.
        lab = butterfly_build(g, LevelOrder([6, 5, 0, 9]))
        assert 5 in lab.label_out[9]
        ref = reference_tol(g, LevelOrder([6, 5, 0, 9]))
        assert lab.snapshot() == ref.snapshot()


class TestCondensationBookkeeping:
    """Three independent bookkeeping leaks in DynamicCondensation."""

    def test_deleted_vertex_leaves_component_map(self):
        # delete_vertex once forgot component_of[v]; re-inserting the same
        # vertex then exploded with VertexExistsError.
        dc = DynamicCondensation(DiGraph(edges=[(1, 2)]))
        dc.delete_vertex(2)
        dc.insert_vertex(2, in_neighbors=[1])
        assert dc.graph.has_edge(1, 2)
        dc.check_invariants()

    def test_split_edges_not_double_counted(self):
        # Splitting an SCC once recounted edges between the *new* pieces
        # from both endpoints, doubling their multiplicity.
        dc = DynamicCondensation(DiGraph(edges=[(0, 1), (1, 2), (2, 0)]))
        dc.delete_vertex(0)  # SCC {0,1,2} splits into {1} and {2}
        dc.check_invariants()
        assert dc.dag.num_edges == 1  # just 1 -> 2

    def test_initial_dag_edges_counted_once(self):
        # __init__ once added condensation edges both directly (via
        # condense()) and through the multiplicity counter.
        dc = DynamicCondensation(DiGraph(edges=[(0, 1), (0, 2), (1, 2)]))
        dc.check_invariants()


class TestEdgeDeletionAffectedRegion:
    """TOLIndex.delete_edge once removed the edge from the graph *before*
    the head's delete_vertex computed B-(head), so ancestors reachable only
    through the dying edge kept stale out-labels."""

    def test_stale_ancestor_label_cleared(self):
        # 1 -> 0 is the only path from 1 to 0's descendants {4}.
        g = DiGraph(edges=[(1, 0), (0, 4), (1, 2)])
        idx = TOLIndex.build(g, order=LevelOrder([4, 0, 1, 2]))
        assert idx.query(1, 4)
        idx.delete_edge(1, 0)
        assert not idx.query(1, 4)
        ref = reference_tol(idx.graph_copy(), idx.order)
        assert idx.labeling.snapshot() == ref.snapshot()


class TestInsertionPlacementSweep:
    """Two Algorithm-3 defects: simulating against the pre-insertion index
    under-counts coverage credit, and admitting +1 terms at the first
    blocker crossing over-counts.  Scenario: chain 4 -> 0 -> 3 -> 1 with 3
    removed and re-inserted; the optimal position is at the very top, which
    the broken sweeps never chose."""

    def test_top_placement_found(self):
        g = DiGraph(edges=[(0, 3), (3, 1), (4, 0)], vertices=[2])
        base = g.copy()
        base.remove_vertex(3)
        lab = butterfly_build(base, LevelOrder([4, 0, 2, 1]))
        from repro.core.insertion import insert_vertex

        insert_vertex(g, lab, 3)
        # Brute-force the best size over all placements.
        sizes = []
        for pos in ["bottom", *(("above", u) for u in [4, 0, 2, 1])]:
            lab2 = butterfly_build(base.copy(), LevelOrder([4, 0, 2, 1]))
            insert_vertex(g, lab2, 3, placement=pos)
            sizes.append(lab2.size())
        assert lab.size() == min(sizes)


class TestFacadeCycleRollback:
    """TOLIndex.insert_vertex once left the half-wired vertex in its
    private graph when the DAG check failed."""

    def test_graph_clean_after_rejected_insert(self):
        from repro.errors import NotADagError
        import pytest

        idx = TOLIndex.build(DiGraph(edges=[(1, 2)]))
        with pytest.raises(NotADagError):
            idx.insert_vertex(3, in_neighbors=[2], out_neighbors=[1])
        assert idx.num_vertices == 2
        assert idx.num_edges == 1
        # And the index still accepts the legal version.
        idx.insert_vertex(3, in_neighbors=[2])
        assert idx.query(1, 3)


class TestReductionGraphRestoration:
    """reduce_labels once failed to re-add isolated vertices to the graph
    after their delete/re-insert round trip."""

    def test_isolated_vertex_survives_reduction(self):
        g = DiGraph(edges=[(1, 2)], vertices=["loner"])
        idx = TOLIndex.build(g, order="topological")
        idx.reduce_labels()
        assert "loner" in idx
        assert idx.graph_copy().has_vertex("loner")


class TestHarnessCycleTolerance:
    """The benchmark adapter for TOL methods once wrapped the DAG-only
    TOLIndex directly, so replaying a trace with a cycle-creating op blew
    up; it now wraps ReachabilityIndex (full system, like Dagger)."""

    def test_adapter_absorbs_cycle(self):
        from repro.bench.harness import build_method

        g = DiGraph(edges=[(1, 2), (2, 3)])
        adapter = build_method("BU", g)
        adapter.insert_edge(3, 1)  # closes a cycle
        assert adapter.query(3, 2)

    def test_reachability_index_consistent_after_merge(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        idx = ReachabilityIndex(g)
        idx.insert_edge(3, 1)
        idx.condensation.check_invariants()
        assert idx.query(2, 1)
