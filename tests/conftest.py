"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.core.order import LevelOrder
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag

# A calmer default hypothesis profile: property tests here build whole
# indices per example, so fewer/larger examples beat many/tiny ones.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def small_dags(draw, max_vertices: int = 10) -> DiGraph:
    """Hypothesis strategy: a small random DAG (possibly empty/edgeless)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    # Random permutation fixes a topological order; edges go forward in it.
    perm = draw(st.permutations(list(range(n))))
    graph = DiGraph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                graph.add_edge(perm[i], perm[j])
    return graph


@st.composite
def dags_with_order(draw, max_vertices: int = 10):
    """Hypothesis strategy: (DAG, random LevelOrder over its vertices)."""
    graph = draw(small_dags(max_vertices=max_vertices))
    seq = draw(st.permutations(sorted(graph.vertices())))
    return graph, LevelOrder(seq)


@pytest.fixture
def fig1() -> DiGraph:
    """The paper's Figure 1 DAG."""
    return figure1_dag()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for ad-hoc sampling inside tests."""
    return random.Random(0xC0FFEE)


def make_random_dag(trial: int, *, max_n: int = 12) -> DiGraph:
    """Deterministic random DAG for seeded loop-style tests."""
    r = random.Random(trial)
    n = r.randint(1, max_n)
    m = r.randint(0, n * (n - 1) // 2)
    return random_dag(n, m, seed=trial)
