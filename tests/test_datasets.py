"""Tests for the dataset registry."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    DATASETS,
    REAL_STANDINS,
    SYNTHETIC_RG,
    dataset_names,
    load,
)
from repro.errors import DatasetError
from repro.graph.dag import is_dag, longest_path_depths


class TestRegistry:
    def test_fifteen_datasets(self):
        assert len(DATASET_NAMES) == 15
        assert len(SYNTHETIC_RG) == 4
        assert len(REAL_STANDINS) == 11

    def test_table3_order(self):
        assert DATASET_NAMES[:4] == ("RG5", "RG10", "RG20", "RG40")
        assert "patent" in DATASET_NAMES
        assert dataset_names() == DATASET_NAMES

    def test_paper_stats_recorded(self):
        spec = DATASETS["twitter"]
        assert spec.paper_vertices == 16_600_000
        assert spec.paper_edges == 18_400_000
        assert spec.avg_degree == pytest.approx(1.10)

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load("nope")

    def test_invalid_size(self):
        with pytest.raises(DatasetError):
            load("wiki", num_vertices=0)


class TestGeneration:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_every_dataset_loads_small(self, name):
        g = load(name, num_vertices=300)
        assert g.num_vertices == 300
        assert is_dag(g)

    def test_case_insensitive(self):
        assert load("WIKI", num_vertices=100) == load("wiki", num_vertices=100)

    def test_deterministic(self):
        assert load("RG5", num_vertices=200) == load("RG5", num_vertices=200)

    def test_seed_changes_graph(self):
        assert load("RG5", num_vertices=200, seed=1) != load(
            "RG5", num_vertices=200, seed=2
        )

    def test_rg_family_levels(self):
        g = load("RG10", num_vertices=400)
        assert max(longest_path_depths(g).values()) <= 7

    def test_rg_family_degree(self):
        g = load("RG5", num_vertices=500)
        assert g.average_degree() == pytest.approx(5.0, rel=0.01)

    def test_tree_family_shape(self):
        g = load("uniprot22m", num_vertices=400)
        assert g.num_edges == 399
        assert all(g.in_degree(v) <= 1 for v in g.vertices())

    def test_power_law_family_degree(self):
        g = load("go-uniprot", num_vertices=800)
        assert g.average_degree() == pytest.approx(4.99, rel=0.2)

    def test_default_sizes_are_laptop_scale(self):
        for spec in DATASETS.values():
            assert 500 <= spec.default_vertices <= 10_000
