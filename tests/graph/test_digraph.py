"""Unit tests for the DiGraph storage substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    VertexExistsError,
    VertexNotFoundError,
)
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = DiGraph(edges=[("a", "b"), ("b", "c")])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_from_vertices(self):
        g = DiGraph(vertices=[1, 2, 3])
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_duplicate_init_edges_are_merged(self):
        g = DiGraph(edges=[(1, 2), (1, 2)])
        assert g.num_edges == 1

    def test_len_and_contains(self):
        g = DiGraph(vertices=["x"])
        assert len(g) == 1
        assert "x" in g
        assert "y" not in g


class TestVertexMutation:
    def test_add_vertex(self):
        g = DiGraph()
        g.add_vertex("v")
        assert g.has_vertex("v")
        assert g.in_degree("v") == 0 and g.out_degree("v") == 0

    def test_add_existing_vertex_raises(self):
        g = DiGraph(vertices=["v"])
        with pytest.raises(VertexExistsError):
            g.add_vertex("v")

    def test_add_vertex_if_absent(self):
        g = DiGraph()
        assert g.add_vertex_if_absent("v") is True
        assert g.add_vertex_if_absent("v") is False

    def test_remove_vertex_strips_incident_edges(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (2, 4)])
        g.remove_vertex(2)
        assert g.num_vertices == 3
        assert g.num_edges == 1  # only 3 -> 1 survives
        assert not g.has_edge(1, 2)
        g.check_invariants()

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            DiGraph().remove_vertex("ghost")

    def test_discard_vertex(self):
        g = DiGraph(vertices=[1])
        assert g.discard_vertex(1) is True
        assert g.discard_vertex(1) is False

    def test_remove_vertex_with_self_loop(self):
        g = DiGraph(edges=[(1, 1), (1, 2)])
        g.remove_vertex(1)
        assert g.num_edges == 0
        assert g.num_vertices == 1
        g.check_invariants()


class TestEdgeMutation:
    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert g.has_vertex("a") and g.has_vertex("b")

    def test_add_duplicate_edge_raises(self):
        g = DiGraph(edges=[(1, 2)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(1, 2)

    def test_add_edge_if_absent(self):
        g = DiGraph()
        assert g.add_edge_if_absent(1, 2) is True
        assert g.add_edge_if_absent(1, 2) is False
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = DiGraph(edges=[(1, 2)])
        g.remove_edge(1, 2)
        assert g.num_edges == 0
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_remove_missing_edge_raises(self):
        g = DiGraph(vertices=[1, 2])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_discard_edge(self):
        g = DiGraph(edges=[(1, 2)])
        assert g.discard_edge(1, 2) is True
        assert g.discard_edge(1, 2) is False

    def test_self_loop_counted_once(self):
        g = DiGraph(edges=[(1, 1)])
        assert g.num_edges == 1
        assert 1 in g.out_neighbors(1)
        assert 1 in g.in_neighbors(1)


class TestNeighborhoods:
    def test_degrees(self):
        g = DiGraph(edges=[(1, 2), (3, 2), (2, 4)])
        assert g.in_degree(2) == 2
        assert g.out_degree(2) == 1
        assert g.degree(2) == 3

    def test_neighbor_snapshots_are_frozen(self):
        g = DiGraph(edges=[(1, 2)])
        snap = g.out_neighbors(1)
        with pytest.raises(AttributeError):
            snap.add(3)  # type: ignore[attr-defined]

    def test_missing_vertex_neighbors_raise(self):
        g = DiGraph()
        with pytest.raises(VertexNotFoundError):
            g.out_neighbors("missing")
        with pytest.raises(VertexNotFoundError):
            g.in_neighbors("missing")

    def test_average_degree(self):
        assert DiGraph().average_degree() == 0.0
        g = DiGraph(edges=[(1, 2), (2, 3)])
        assert g.average_degree() == pytest.approx(2 / 3)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = DiGraph(edges=[(1, 2)])
        c = g.copy()
        c.add_edge(2, 3)
        assert not g.has_vertex(3)
        assert g != c

    def test_reverse(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        r = g.reverse()
        assert r.has_edge(2, 1) and r.has_edge(3, 2)
        assert r.num_edges == g.num_edges
        r.check_invariants()

    def test_reverse_twice_is_identity(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (3, 2)])
        assert g.reverse().reverse() == g

    def test_subgraph(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (1, 3)])
        s = g.subgraph([1, 3])
        assert s.num_vertices == 2
        assert s.has_edge(1, 3)
        assert not s.has_vertex(2)

    def test_subgraph_ignores_unknown_vertices(self):
        g = DiGraph(vertices=[1])
        s = g.subgraph([1, 99])
        assert s.num_vertices == 1

    def test_equality(self):
        a = DiGraph(edges=[(1, 2)])
        b = DiGraph(edges=[(1, 2)])
        assert a == b
        b.add_vertex(3)
        assert a != b
        assert a != "not a graph"

    def test_repr(self):
        assert "DiGraph" in repr(DiGraph())


@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=25))
def test_invariants_after_random_edits(pairs):
    """Adding then removing arbitrary edges keeps internals consistent."""
    g = DiGraph()
    for tail, head in pairs:
        g.add_edge_if_absent(tail, head)
    g.check_invariants()
    for tail, head in pairs:
        g.discard_edge(tail, head)
    g.check_invariants()
    assert g.num_edges == 0


@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=25))
def test_vertex_removal_keeps_invariants(pairs):
    g = DiGraph()
    for tail, head in pairs:
        g.add_edge_if_absent(tail, head)
    for v in list(g.vertices()):
        g.remove_vertex(v)
        g.check_invariants()
    assert g.num_vertices == 0
