"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.dag import is_dag, longest_path_depths
from repro.graph.generators import (
    figure1_dag,
    power_law_dag,
    random_dag,
    random_layered_dag,
    random_tree_dag,
)


class TestFigure1:
    def test_shape(self):
        g = figure1_dag()
        assert g.num_vertices == 8
        assert g.num_edges == 10
        assert is_dag(g)

    def test_known_reachability(self):
        from repro.graph.traversal import forward_reachable

        g = figure1_dag()
        assert forward_reachable(g, "a") == {"b", "c", "d", "f", "g", "h"}
        assert forward_reachable(g, "e") == {"a", "b", "c", "d", "f", "g", "h"}
        assert forward_reachable(g, "c") == set()


class TestLayered:
    def test_size_and_degree(self):
        g = random_layered_dag(500, 5.0, seed=1)
        assert g.num_vertices == 500
        assert g.num_edges == 2500
        assert is_dag(g)

    def test_respects_level_count(self):
        g = random_layered_dag(400, 3.0, num_levels=8, seed=2)
        depth = max(longest_path_depths(g).values())
        assert depth <= 7  # at most 8 layers

    def test_deterministic(self):
        a = random_layered_dag(100, 4.0, seed=7)
        b = random_layered_dag(100, 4.0, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_layered_dag(100, 4.0, seed=7)
        b = random_layered_dag(100, 4.0, seed=8)
        assert a != b

    def test_impossible_density_raises(self):
        with pytest.raises(GraphError):
            random_layered_dag(10, 50.0, num_levels=2, seed=0)

    def test_bad_parameters(self):
        with pytest.raises(GraphError):
            random_layered_dag(0, 1.0)
        with pytest.raises(GraphError):
            random_layered_dag(10, 1.0, num_levels=1)
        with pytest.raises(GraphError):
            random_layered_dag(10, -1.0)


class TestTree:
    def test_is_tree(self):
        g = random_tree_dag(200, seed=3)
        assert g.num_edges == 199
        assert is_dag(g)
        for v in g.vertices():
            assert g.in_degree(v) <= 1

    def test_single_root(self):
        g = random_tree_dag(50, seed=4)
        roots = [v for v in g.vertices() if g.in_degree(v) == 0]
        assert roots == [0]

    def test_singleton(self):
        g = random_tree_dag(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            random_tree_dag(0)

    def test_deterministic(self):
        assert random_tree_dag(64, seed=5) == random_tree_dag(64, seed=5)


class TestPowerLaw:
    def test_size_and_acyclicity(self):
        g = power_law_dag(400, 2.0, seed=6)
        assert g.num_vertices == 400
        assert is_dag(g)

    def test_degree_roughly_matches(self):
        g = power_law_dag(600, 2.5, seed=7)
        assert g.average_degree() == pytest.approx(2.5, rel=0.15)

    def test_heavy_tail(self):
        g = power_law_dag(800, 2.0, seed=8)
        max_in = max(g.in_degree(v) for v in g.vertices())
        avg_in = g.num_edges / g.num_vertices
        assert max_in > 6 * avg_in  # hubs exist

    def test_deterministic(self):
        assert power_law_dag(100, 1.5, seed=9) == power_law_dag(100, 1.5, seed=9)

    def test_invalid(self):
        with pytest.raises(GraphError):
            power_law_dag(0, 1.0)
        with pytest.raises(GraphError):
            power_law_dag(10, -2.0)


class TestRandomDag:
    def test_exact_edge_count(self):
        g = random_dag(30, 100, seed=10)
        assert g.num_edges == 100
        assert is_dag(g)

    def test_dense_regime(self):
        n = 12
        max_edges = n * (n - 1) // 2
        g = random_dag(n, max_edges, seed=11)
        assert g.num_edges == max_edges
        assert is_dag(g)

    def test_too_many_edges_raises(self):
        with pytest.raises(GraphError):
            random_dag(4, 10)

    def test_zero_edges(self):
        g = random_dag(5, 0)
        assert g.num_edges == 0

    def test_deterministic(self):
        assert random_dag(20, 40, seed=12) == random_dag(20, 40, seed=12)
