"""Unit tests for Tarjan SCC and the condensation reduction."""

import random

from hypothesis import given, strategies as st

from repro.graph.dag import is_dag
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.traversal import bidirectional_reachable


def scc_partition(graph):
    return {frozenset(c) for c in strongly_connected_components(graph)}


class TestTarjan:
    def test_empty(self):
        assert strongly_connected_components(DiGraph()) == []

    def test_singletons_in_dag(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        assert scc_partition(g) == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_simple_cycle(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1)])
        assert scc_partition(g) == {frozenset({1, 2, 3})}

    def test_two_cycles_bridged(self):
        g = DiGraph(edges=[(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        assert scc_partition(g) == {frozenset({1, 2}), frozenset({3, 4})}

    def test_self_loop_is_its_own_scc(self):
        g = DiGraph(edges=[(1, 1), (1, 2)])
        assert scc_partition(g) == {frozenset({1}), frozenset({2})}

    def test_emission_order_is_reverse_topological(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        comps = strongly_connected_components(g)
        # A component is emitted before any component that reaches it.
        pos = {frozenset(c): i for i, c in enumerate(comps)}
        assert pos[frozenset({3})] < pos[frozenset({1})]

    def test_deep_chain_no_recursion_limit(self):
        n = 5000
        g = DiGraph(edges=[(i, i + 1) for i in range(n)])
        assert len(strongly_connected_components(g)) == n + 1

    def test_deep_cycle(self):
        n = 5000
        edges = [(i, i + 1) for i in range(n)] + [(n, 0)]
        g = DiGraph(edges=edges)
        assert len(strongly_connected_components(g)) == 1


class TestCondense:
    def test_dag_condensation_is_trivial(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        cond = condense(g)
        assert cond.is_trivial()
        assert cond.num_components == 3

    def test_cycle_contracts(self):
        g = DiGraph(edges=[("a", "b"), ("b", "a"), ("b", "c")])
        cond = condense(g)
        assert cond.num_components == 2
        assert cond.same_component("a", "b")
        assert not cond.same_component("a", "c")

    def test_condensed_graph_is_dag(self):
        g = DiGraph(edges=[(1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (4, 1)])
        cond = condense(g)
        assert is_dag(cond.dag) or cond.num_components == 1

    def test_component_ids_topological(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        cond = condense(g)
        for tail, head in cond.dag.edges():
            assert tail < head

    def test_members_cover_all_vertices(self):
        g = DiGraph(edges=[(1, 2), (2, 1), (3, 4)])
        cond = condense(g)
        all_members = sorted(v for m in cond.members.values() for v in m)
        assert all_members == [1, 2, 3, 4]

    def test_repr(self):
        assert "Condensation" in repr(condense(DiGraph(vertices=[1])))


def random_digraph(seed: int, n: int, p: float) -> DiGraph:
    r = random.Random(seed)
    g = DiGraph(vertices=range(n))
    for i in range(n):
        for j in range(n):
            if i != j and r.random() < p:
                g.add_edge_if_absent(i, j)
    return g


@given(st.integers(0, 200))
def test_condensation_preserves_reachability(seed):
    """s -> t in G ⟺ same component, or comp(s) -> comp(t) in G*."""
    r = random.Random(seed)
    g = random_digraph(seed, r.randint(1, 8), 0.25)
    cond = condense(g)
    assert is_dag(cond.dag)
    for s in g.vertices():
        for t in g.vertices():
            truth = bidirectional_reachable(g, s, t)
            cs, ct = cond.component_of[s], cond.component_of[t]
            via_cond = cs == ct or bidirectional_reachable(cond.dag, cs, ct)
            assert truth == via_cond


@given(st.integers(0, 200))
def test_components_are_maximal_and_strongly_connected(seed):
    r = random.Random(1000 + seed)
    g = random_digraph(1000 + seed, r.randint(1, 8), 0.3)
    for comp in strongly_connected_components(g):
        comp_set = set(comp)
        for u in comp:
            for v in comp:
                assert bidirectional_reachable(g, u, v)
        # Maximality: no outside vertex is mutually reachable with a member.
        probe = comp[0]
        for w in g.vertices():
            if w not in comp_set:
                assert not (
                    bidirectional_reachable(g, probe, w)
                    and bidirectional_reachable(g, w, probe)
                )
