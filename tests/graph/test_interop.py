"""Tests for NetworkX interop."""

import networkx as nx
import pytest

from repro.core.index import TOLIndex
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.interop import from_networkx, to_networkx


class TestFromNetworkx:
    def test_basic(self):
        g = nx.DiGraph([(1, 2), (2, 3)])
        mine = from_networkx(g)
        assert mine.has_edge(1, 2) and mine.has_edge(2, 3)
        assert mine.num_vertices == 3

    def test_isolated_nodes_kept(self):
        g = nx.DiGraph()
        g.add_node("lonely")
        assert from_networkx(g).has_vertex("lonely")

    def test_multigraph_collapses_parallel_edges(self):
        g = nx.MultiDiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert from_networkx(g).num_edges == 1

    def test_undirected_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.Graph([(1, 2)]))

    def test_attributes_dropped_gracefully(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", weight=3.5)
        mine = from_networkx(g)
        assert mine.has_edge("a", "b")


class TestToNetworkx:
    def test_round_trip(self):
        mine = random_dag(20, 50, seed=0)
        assert from_networkx(to_networkx(mine)) == mine

    def test_empty(self):
        out = to_networkx(DiGraph())
        assert out.number_of_nodes() == 0


def test_networkx_pipeline_to_index():
    """The advertised adoption path: nx graph -> TOLIndex -> queries."""
    g = nx.gn_graph(60, seed=4)  # growing-network digraph (a DAG)
    index = TOLIndex.build(from_networkx(g))
    for s, t in [(5, 0), (0, 5), (30, 0)]:
        assert index.query(s, t) == nx.has_path(g, s, t)
