"""Unit and randomized tests for the dynamic SCC condensation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    VertexExistsError,
    VertexNotFoundError,
)
from repro.graph.condensation import DynamicCondensation
from repro.graph.dag import is_dag
from repro.graph.digraph import DiGraph


class TestBasics:
    def test_initial_dag(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3)]))
        assert dc.dag.num_vertices == 3
        assert dc.dag.num_edges == 2
        dc.check_invariants()

    def test_initial_cycle_contracted(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 1)]))
        assert dc.dag.num_vertices == 1
        assert dc.same_component(1, 2)

    def test_empty(self):
        dc = DynamicCondensation()
        assert dc.dag.num_vertices == 0

    def test_component_lookup_missing(self):
        with pytest.raises(VertexNotFoundError):
            DynamicCondensation().component("ghost")


class TestVertexInsertion:
    def test_isolated(self):
        dc = DynamicCondensation()
        delta = dc.insert_vertex("a")
        assert delta.removed == ()
        assert len(delta.added) == 1
        dc.check_invariants()

    def test_with_edges(self):
        dc = DynamicCondensation(DiGraph(vertices=[1, 2]))
        delta = dc.insert_vertex(3, in_neighbors=[1], out_neighbors=[2])
        assert len(delta.added) == 1
        comp = delta.added[0]
        assert dc.dag.has_edge(dc.component(1), comp)
        assert dc.dag.has_edge(comp, dc.component(2))
        dc.check_invariants()

    def test_cycle_creating_insert_merges(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2)]))
        delta = dc.insert_vertex(3, in_neighbors=[2], out_neighbors=[1])
        assert dc.same_component(1, 3) and dc.same_component(2, 3)
        assert len(delta.removed) == 2
        assert len(delta.added) == 1
        dc.check_invariants()

    def test_duplicate_vertex_rejected(self):
        dc = DynamicCondensation(DiGraph(vertices=[1]))
        with pytest.raises(VertexExistsError):
            dc.insert_vertex(1)

    def test_unknown_neighbor_rejected(self):
        dc = DynamicCondensation()
        with pytest.raises(VertexNotFoundError):
            dc.insert_vertex("v", in_neighbors=["ghost"])


class TestVertexDeletion:
    def test_singleton(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2)]))
        delta = dc.delete_vertex(2)
        assert len(delta.removed) == 1
        assert delta.added == ()
        assert 2 not in dc.component_of
        dc.check_invariants()

    def test_reinsert_after_delete(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2)]))
        dc.delete_vertex(2)
        dc.insert_vertex(2, in_neighbors=[1])
        assert dc.graph.has_edge(1, 2)
        dc.check_invariants()

    def test_component_split(self):
        # 1 -> 2 -> 3 -> 1 is one SCC; deleting 2 splits it into {1}, {3}.
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3), (3, 1)]))
        assert dc.dag.num_vertices == 1
        delta = dc.delete_vertex(2)
        assert len(delta.added) == 2
        assert not dc.same_component(1, 3)
        dc.check_invariants()


class TestEdgeUpdates:
    def test_edge_between_components(self):
        dc = DynamicCondensation(DiGraph(vertices=[1, 2]))
        delta = dc.insert_edge(1, 2)
        assert dc.dag.has_edge(dc.component(1), dc.component(2))
        assert delta.removed == (dc.component(2),)
        dc.check_invariants()

    def test_parallel_member_edge_is_silent(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3), (1, 4), (4, 3)]))
        # 1 -> 3 adds a second member edge pattern between distinct comps?
        delta = dc.insert_edge(1, 3)
        dc.check_invariants()
        # comp(1) -> comp(3) edge already existed via no direct edge: the
        # delta must at most refresh comp(3).
        assert set(delta.removed) <= {dc.component(3)}

    def test_cycle_creating_edge_merges(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3)]))
        delta = dc.insert_edge(3, 1)
        assert dc.dag.num_vertices == 1
        assert len(delta.removed) == 3 and len(delta.added) == 1
        dc.check_invariants()

    def test_intra_component_edge_is_silent(self):
        # A new chord inside an existing SCC changes nothing condensed.
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3), (3, 1)]))
        delta = dc.insert_edge(1, 3)
        assert delta.is_empty()
        dc.check_invariants()

    def test_duplicate_edge_rejected(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2)]))
        with pytest.raises(EdgeExistsError):
            dc.insert_edge(1, 2)

    def test_missing_edge_rejected(self):
        dc = DynamicCondensation(DiGraph(vertices=[1, 2]))
        with pytest.raises(EdgeNotFoundError):
            dc.delete_edge(1, 2)

    def test_edge_deletion_splits_scc(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2), (2, 3), (3, 1)]))
        delta = dc.delete_edge(3, 1)
        assert dc.dag.num_vertices == 3
        assert len(delta.added) == 3
        dc.check_invariants()

    def test_edge_deletion_between_components(self):
        dc = DynamicCondensation(DiGraph(edges=[(1, 2)]))
        delta = dc.delete_edge(1, 2)
        assert dc.dag.num_edges == 0
        assert delta.removed == (dc.component(2),)
        dc.check_invariants()


@given(st.integers(0, 150))
def test_randomized_update_sequences(seed):
    """Any update sequence keeps the condensation equal to from-scratch."""
    r = random.Random(seed)
    n = r.randint(1, 7)
    g = DiGraph(vertices=range(n))
    for i in range(n):
        for j in range(n):
            if i != j and r.random() < 0.2:
                g.add_edge_if_absent(i, j)
    dc = DynamicCondensation(g.copy())
    nxt = n
    for _ in range(15):
        roll = r.random()
        if roll < 0.25 and dc.graph.num_vertices > 1:
            dc.delete_vertex(r.choice(list(dc.graph.vertices())))
        elif roll < 0.5:
            pairs = [
                (a, b)
                for a in dc.graph.vertices()
                for b in dc.graph.vertices()
                if a != b and not dc.graph.has_edge(a, b)
            ]
            if pairs:
                dc.insert_edge(*r.choice(pairs))
        elif roll < 0.75:
            edges = list(dc.graph.edges())
            if edges:
                dc.delete_edge(*r.choice(edges))
        else:
            verts = list(dc.graph.vertices())
            ins = [x for x in verts if r.random() < 0.3]
            outs = [x for x in verts if r.random() < 0.3]
            dc.insert_vertex(nxt, ins, outs)
            nxt += 1
        dc.check_invariants()
        assert is_dag(dc.dag)
