"""Unit tests for edge-list I/O."""

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.io import (
    format_edge_list,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)

from ..conftest import small_dags


class TestParse:
    def test_basic(self):
        g = parse_edge_list("1 2\n2 3\n")
        assert g.has_edge(1, 2) and g.has_edge(2, 3)

    def test_comments_and_blanks(self):
        g = parse_edge_list("# header\n\n1 2  # trailing\n")
        assert g.num_edges == 1

    def test_isolated_vertex_line(self):
        g = parse_edge_list("42\n")
        assert g.has_vertex(42)
        assert g.num_edges == 0

    def test_string_vertices(self):
        g = parse_edge_list("alice bob\n")
        assert g.has_edge("alice", "bob")

    def test_mixed_tokens(self):
        g = parse_edge_list("1 bob\n")
        assert g.has_edge(1, "bob")

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            parse_edge_list("1 2\n1 2\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphError):
            parse_edge_list("1 2 3\n")

    def test_empty_text(self):
        g = parse_edge_list("")
        assert g.num_vertices == 0


class TestFormat:
    def test_header_included(self):
        text = format_edge_list(DiGraph(edges=[(1, 2)]), header="my graph")
        assert text.startswith("# my graph\n")

    def test_stats_comment(self):
        text = format_edge_list(DiGraph(edges=[(1, 2)]))
        assert "vertices=2 edges=1" in text

    def test_isolated_vertices_preserved(self):
        g = DiGraph(vertices=["lonely"])
        assert parse_edge_list(format_edge_list(g)).has_vertex("lonely")


class TestRoundTripFiles:
    def test_plain_file(self, tmp_path):
        g = random_dag(25, 60, seed=0)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="test")
        assert read_edge_list(path) == g

    def test_gzip_file(self, tmp_path):
        g = random_dag(25, 60, seed=1)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g
        # The file is genuinely compressed (gzip magic bytes).
        assert path.read_bytes()[:2] == b"\x1f\x8b"


@given(small_dags())
def test_round_trip_property(graph):
    assert parse_edge_list(format_edge_list(graph)) == graph
