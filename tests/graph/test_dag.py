"""Unit tests for topological orders and DAG utilities."""

import pytest
from hypothesis import given

from repro.errors import NotADagError
from repro.graph.dag import (
    ensure_dag,
    is_dag,
    longest_path_depths,
    topological_levels,
    topological_order,
    topological_rank,
)
from repro.graph.digraph import DiGraph

from ..conftest import small_dags


class TestTopologicalOrder:
    def test_chain(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        assert topological_order(g) == [1, 2, 3]

    def test_empty_graph(self):
        assert topological_order(DiGraph()) == []

    def test_isolated_vertices_included(self):
        g = DiGraph(vertices=["a", "b"])
        assert sorted(topological_order(g)) == ["a", "b"]

    def test_cycle_raises(self):
        g = DiGraph(edges=[(1, 2), (2, 1)])
        with pytest.raises(NotADagError):
            topological_order(g)

    def test_self_loop_raises(self):
        g = DiGraph(edges=[(1, 1)])
        with pytest.raises(NotADagError):
            topological_order(g)

    def test_rank_respects_edges(self):
        g = DiGraph(edges=[(3, 1), (1, 4), (3, 4), (4, 5)])
        rank = topological_rank(g)
        for tail, head in g.edges():
            assert rank[tail] < rank[head]

    def test_deterministic(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (2, 4), (3, 4)])
        assert topological_order(g) == topological_order(g.copy())


class TestIsDag:
    def test_dag(self):
        assert is_dag(DiGraph(edges=[(1, 2)]))

    def test_cyclic(self):
        assert not is_dag(DiGraph(edges=[(1, 2), (2, 3), (3, 1)]))

    def test_ensure_dag_raises_only_on_cycles(self):
        ensure_dag(DiGraph(edges=[(1, 2)]))
        with pytest.raises(NotADagError):
            ensure_dag(DiGraph(edges=[(1, 2), (2, 1)]))


class TestDepths:
    def test_chain_depths(self):
        g = DiGraph(edges=[(1, 2), (2, 3)])
        assert longest_path_depths(g) == {1: 0, 2: 1, 3: 2}

    def test_longest_path_wins(self):
        # 1 -> 3 directly, but also 1 -> 2 -> 3.
        g = DiGraph(edges=[(1, 3), (1, 2), (2, 3)])
        assert longest_path_depths(g)[3] == 2

    def test_levels_partition_vertices(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (3, 4)])
        levels = topological_levels(g)
        flat = [v for level in levels for v in level]
        assert sorted(flat) == sorted(g.vertices())
        assert set(levels[0]) == {1}

    def test_empty(self):
        assert topological_levels(DiGraph()) == []


@given(small_dags())
def test_topological_order_property(graph):
    order = topological_order(graph)
    assert sorted(order) == sorted(graph.vertices())
    pos = {v: i for i, v in enumerate(order)}
    for tail, head in graph.edges():
        assert pos[tail] < pos[head]


@given(small_dags())
def test_depths_property(graph):
    depths = longest_path_depths(graph)
    for tail, head in graph.edges():
        assert depths[head] >= depths[tail] + 1
    for v in graph.vertices():
        if graph.in_degree(v) == 0:
            assert depths[v] == 0
