"""Unit tests for traversal primitives and the BFS query baseline."""

import pytest
from hypothesis import given

from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    backward_reachable,
    bfs_order,
    bidirectional_reachable,
    dfs_preorder,
    forward_reachable,
    has_path_dfs,
)

from ..conftest import small_dags


@pytest.fixture
def diamond():
    return DiGraph(edges=[(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)])


class TestOrders:
    def test_bfs_starts_at_source(self, diamond):
        assert next(bfs_order(diamond, 1)) == 1

    def test_bfs_visits_each_once(self, diamond):
        seen = list(bfs_order(diamond, 1))
        assert len(seen) == len(set(seen)) == 5

    def test_bfs_reverse(self, diamond):
        assert set(bfs_order(diamond, 4, reverse=True)) == {1, 2, 3, 4}

    def test_dfs_visits_each_once(self, diamond):
        seen = list(dfs_preorder(diamond, 1))
        assert len(seen) == len(set(seen)) == 5

    def test_dfs_reverse(self, diamond):
        assert set(dfs_preorder(diamond, 5, reverse=True)) == {1, 2, 3, 4, 5}


class TestReachableSets:
    def test_forward(self, diamond):
        assert forward_reachable(diamond, 2) == {4, 5}

    def test_forward_includes_source_flag(self, diamond):
        assert 2 in forward_reachable(diamond, 2, include_source=True)

    def test_backward(self, diamond):
        assert backward_reachable(diamond, 4) == {1, 2, 3}

    def test_backward_include_target(self, diamond):
        assert 4 in backward_reachable(diamond, 4, include_target=True)

    def test_sink_and_source(self, diamond):
        assert forward_reachable(diamond, 5) == set()
        assert backward_reachable(diamond, 1) == set()


class TestBidirectional:
    def test_positive(self, diamond):
        assert bidirectional_reachable(diamond, 1, 5)

    def test_negative(self, diamond):
        assert not bidirectional_reachable(diamond, 5, 1)

    def test_reflexive(self, diamond):
        assert bidirectional_reachable(diamond, 3, 3)

    def test_missing_source_raises(self, diamond):
        with pytest.raises(VertexNotFoundError):
            bidirectional_reachable(diamond, "ghost", 1)

    def test_missing_target_raises(self, diamond):
        with pytest.raises(VertexNotFoundError):
            bidirectional_reachable(diamond, 1, "ghost")

    def test_works_on_cycles(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        assert bidirectional_reachable(g, 1, 4)
        assert not bidirectional_reachable(g, 4, 2)

    def test_disconnected(self):
        g = DiGraph(vertices=[1, 2])
        assert not bidirectional_reachable(g, 1, 2)


@given(small_dags())
def test_bidirectional_agrees_with_dfs(graph):
    vertices = list(graph.vertices())
    for s in vertices:
        for t in vertices:
            assert bidirectional_reachable(graph, s, t) == has_path_dfs(graph, s, t)


@given(small_dags())
def test_forward_backward_duality(graph):
    """t in forward(s) ⟺ s in backward(t)."""
    fwd = {v: forward_reachable(graph, v) for v in graph.vertices()}
    for t in graph.vertices():
        bwd = backward_reachable(graph, t)
        for s in graph.vertices():
            assert (t in fwd[s]) == (s in bwd)
