"""CSRGraph snapshot: structure, determinism, and cache invalidation."""

import pytest

from repro.errors import NotADagError, UnknownVertexError
from repro.graph.csr import CSRGraph, csr_snapshot
from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_dag, random_dag


def _assert_matches(graph: DiGraph, snap: CSRGraph) -> None:
    """The snapshot must mirror the graph's adjacency exactly."""
    snap.check_invariants()
    assert snap.num_vertices == graph.num_vertices
    assert snap.num_edges == graph.num_edges
    assert list(snap.vertices()) == list(graph.vertices())
    for v in graph.vertices():
        assert snap.out_neighbors(v) == sorted(
            graph.iter_out(v), key=snap.id_of
        )
        assert snap.in_neighbors(v) == sorted(
            graph.iter_in(v), key=snap.id_of
        )
        i = snap.id_of(v)
        assert snap.out_degree_of(i) == graph.out_degree(v)
        assert snap.in_degree_of(i) == graph.in_degree(v)


class TestStructure:
    def test_mirrors_figure1(self):
        graph = figure1_dag()
        _assert_matches(graph, csr_snapshot(graph))

    def test_mirrors_random_dag(self):
        graph = random_dag(200, 800, seed=3)
        _assert_matches(graph, csr_snapshot(graph))

    def test_empty_graph(self):
        snap = csr_snapshot(DiGraph())
        snap.check_invariants()
        assert snap.num_vertices == 0
        assert snap.num_edges == 0
        assert list(snap.vertices()) == []

    def test_ids_follow_insertion_order(self):
        graph = DiGraph(vertices=["c", "a", "b"])
        graph.add_edge("b", "a")
        snap = csr_snapshot(graph)
        assert [snap.id_of(v) for v in ("c", "a", "b")] == [0, 1, 2]
        assert snap.vertex_of(0) == "c"

    def test_rows_sorted_by_id(self):
        graph = DiGraph(edges=[("x", "c"), ("x", "a"), ("x", "b")])
        snap = csr_snapshot(graph)
        row = list(snap.out_ids_of(snap.id_of("x")))
        assert row == sorted(row)

    def test_unknown_vertex(self):
        snap = csr_snapshot(DiGraph(vertices=[1]))
        assert snap.get(99) is None
        assert 99 not in snap
        with pytest.raises(UnknownVertexError):
            snap.id_of(99)

    def test_deterministic(self):
        graph = random_dag(100, 400, seed=5)
        a = csr_snapshot(graph)
        b = csr_snapshot(graph)
        assert a.out_targets == b.out_targets
        assert a.in_targets == b.in_targets
        assert list(a.out_offsets) == list(b.out_offsets)


class TestTopologicalIds:
    def test_valid_and_deterministic(self):
        graph = random_dag(150, 500, seed=7)
        snap = graph.csr()
        topo = list(snap.topological_ids())
        assert sorted(topo) == list(range(snap.num_vertices))
        position = {v: k for k, v in enumerate(topo)}
        for i in range(snap.num_vertices):
            for u in snap.out_ids_of(i):
                assert position[i] < position[u]
        assert topo == list(csr_snapshot(graph).topological_ids())

    def test_cached(self):
        snap = figure1_dag().csr()
        assert snap.topological_ids() is snap.topological_ids()

    def test_cycle_rejected(self):
        graph = DiGraph(edges=[(1, 2), (2, 3), (3, 1)])
        with pytest.raises(NotADagError):
            graph.csr().topological_ids()


class TestCache:
    def test_hit_while_unchanged(self):
        graph = figure1_dag()
        assert graph.csr() is graph.csr()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_vertex("zz"),
            lambda g: g.add_edge("zz1", "zz2"),
            lambda g: g.remove_edge("a", "b"),
            lambda g: g.remove_vertex("a"),
            lambda g: g.clear(),
        ],
        ids=["add_vertex", "add_edge", "remove_edge", "remove_vertex", "clear"],
    )
    def test_invalidated_by_mutation(self, mutate):
        graph = figure1_dag()
        before = graph.csr()
        version = graph.version
        mutate(graph)
        assert graph.version > version
        after = graph.csr()
        assert after is not before
        _assert_matches(graph, after)

    def test_noop_mutations_keep_cache(self):
        graph = figure1_dag()
        snap = graph.csr()
        graph.add_vertex_if_absent("a")  # already present: no-op
        assert graph.csr() is snap

    def test_snapshot_survives_source_mutation(self):
        # The snapshot is immutable: it keeps describing the old state.
        graph = DiGraph(edges=[(1, 2)])
        snap = graph.csr()
        graph.add_edge(2, 3)
        assert snap.num_edges == 1
        assert 3 not in snap
        assert graph.csr().num_edges == 2

    def test_copy_does_not_share_cache(self):
        graph = figure1_dag()
        snap = graph.csr()
        clone = graph.copy()
        assert clone.csr() is not snap
        _assert_matches(clone, clone.csr())


class TestInternDense:
    def test_assigns_consecutive_ids(self):
        from repro.core.intern import VertexInterner

        interner = VertexInterner()
        assert interner.intern("x") == 0
        assert interner.intern_dense(["a", "b", "c"]) == 3
        assert [interner.id_of(v) for v in ("a", "b", "c")] == [1, 2, 3]
        interner.check_invariants()

    def test_duplicate_rolls_back(self):
        from repro.core.intern import VertexInterner

        interner = VertexInterner()
        interner.intern("x")
        with pytest.raises(ValueError):
            interner.intern_dense(["a", "b", "a"])
        with pytest.raises(ValueError):
            interner.intern_dense(["y", "x"])  # already interned
        assert len(interner) == 1
        assert interner.capacity == 1
        interner.check_invariants()

    def test_rejects_free_list(self):
        from repro.core.intern import VertexInterner

        interner = VertexInterner()
        interner.intern("x")
        interner.release("x")
        with pytest.raises(ValueError):
            interner.intern_dense(["a"])
