"""CLI chart flag and experiments-vertices plumbing."""

from repro.cli import main


def test_experiments_chart_flag(capsys):
    assert main([
        "experiments", "--only", "fig5", "--vertices", "120", "--chart",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "scale]" in out  # chart header
    assert "■" in out


def test_experiments_vertices_override(capsys):
    assert main(["experiments", "--only", "table3", "--vertices", "150"]) == 0
    out = capsys.readouterr().out
    assert " 150 " in out
