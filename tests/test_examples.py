"""Smoke tests: every example script runs to completion at tiny scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_contents():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 4


def test_quickstart():
    proc = run("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "e -> c?  True" in proc.stdout
    assert "Label reduction" in proc.stdout or "label" in proc.stdout.lower()


def test_social_network():
    proc = run("social_network.py", "--users", "120", "--events", "15")
    assert proc.returncode == 0, proc.stderr
    assert "all methods agreed" in proc.stdout
    assert "TOL/BU" in proc.stdout


def test_citation_analysis():
    proc = run("citation_analysis.py", "--papers", "250", "--queries", "300")
    assert proc.returncode == 0, proc.stderr
    assert "GRAIL" in proc.stdout
    assert "label reduction" in proc.stdout.lower()


def test_trace_replay():
    proc = run("trace_replay.py", "--vertices", "150", "--ops", "60")
    assert proc.returncode == 0, proc.stderr
    assert "all agree" in proc.stdout
    assert "round-tripped" in proc.stdout


@pytest.mark.parametrize("only", ["table3", "fig5"])
def test_reproduce_paper_subset(only):
    proc = run("reproduce_paper.py", "--profile", "quick", "--only", only)
    assert proc.returncode == 0, proc.stderr
    marker = "Table 3" if only == "table3" else "Figure 5"
    assert marker in proc.stdout
